#include "workloads/join.hh"

#include <algorithm>
#include <set>

namespace ts
{

void
JoinWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);

    // --- Zipf-skewed partition sizes (>= 4 keys each) -----------------
    std::vector<std::uint64_t> partSize(p_.partitions, 4);
    std::uint64_t assigned = 4 * p_.partitions;
    TS_ASSERT(assigned <= p_.rTotal, "rTotal too small");
    while (assigned < p_.rTotal) {
        ++partSize[rng.zipf(p_.partitions, p_.zipfSkew)];
        ++assigned;
    }

    // --- sorted unique key sets ----------------------------------------
    auto sampleSorted = [&](std::uint64_t n) {
        std::set<std::int64_t> keys;
        while (keys.size() < n) {
            keys.insert(rng.uniformInt(
                0, static_cast<std::int64_t>(p_.keySpace) - 1));
        }
        return std::vector<std::int64_t>(keys.begin(), keys.end());
    };

    const auto sKeys = sampleSorted(p_.sSize);
    const Addr s = img.allocWords(p_.sSize);
    for (std::uint64_t i = 0; i < p_.sSize; ++i)
        img.writeInt(s + i * wordBytes, sKeys[i]);

    std::vector<Addr> rBase(p_.partitions);
    expected_ = 0;
    for (std::uint64_t pIdx = 0; pIdx < p_.partitions; ++pIdx) {
        const auto keys = sampleSorted(partSize[pIdx]);
        rBase[pIdx] = img.allocWords(keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i)
            img.writeInt(rBase[pIdx] + i * wordBytes, keys[i]);
        for (const auto k : keys) {
            expected_ += std::binary_search(sKeys.begin(), sKeys.end(),
                                            k)
                             ? 1
                             : 0;
        }
    }

    const Addr counts = img.allocWords(p_.partitions);
    totalAddr_ = img.allocWords(1);

    // --- task types -----------------------------------------------------
    auto probe = std::make_unique<Dfg>("join_probe");
    const auto rIn = probe->addInput();
    const auto sIn = probe->addInput();
    const auto cnt =
        probe->add(Op::IsectCount, Operand::ref(rIn), Operand::ref(sIn));
    probe->addOutput(cnt);
    const TaskTypeId probeTy =
        delta.registry().addDfgType("join_probe", std::move(probe));

    auto reduce = std::make_unique<Dfg>("join_reduce");
    const auto cIn = reduce->addInput();
    const auto sum = reduce->add(Op::AccAdd, Operand::ref(cIn));
    reduce->addOutput(sum);
    const TaskTypeId reduceTy =
        delta.registry().addDfgType("join_reduce", std::move(reduce));

    // --- task graph -----------------------------------------------------
    const std::uint32_t group = graph.addSharedGroup(s, p_.sSize);
    std::vector<TaskId> probes;
    for (std::uint64_t pIdx = 0; pIdx < p_.partitions; ++pIdx) {
        WriteDesc out;
        out.base = counts + pIdx * wordBytes;
        const TaskId id = graph.addTask(
            probeTy,
            {StreamDesc::linear(Space::Dram, rBase[pIdx],
                                partSize[pIdx]),
             StreamDesc::linear(Space::Dram, s, p_.sSize)},
            {out});
        graph.setSharedInput(id, 1, group);
        probes.push_back(id);
    }

    WriteDesc totalOut;
    totalOut.base = totalAddr_;
    const TaskId red = graph.addTask(
        reduceTy,
        {StreamDesc::linear(Space::Dram, counts, p_.partitions)},
        {totalOut});
    for (const TaskId id : probes)
        graph.addBarrier(id, red);
}

bool
JoinWorkload::check(const MemImage& img) const
{
    const std::int64_t got = img.readInt(totalAddr_);
    if (got != expected_) {
        warn("join mismatch: got ", got, " want ", expected_);
        return false;
    }
    return true;
}

} // namespace ts
