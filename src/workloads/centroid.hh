/**
 * @file
 * Nearest-centroid distance computation (the assignment kernel of
 * k-means): for each point, the squared distance to its closest
 * centroid, computed as a two-level fabric reduction (sum over
 * dimensions, min over centroids).
 *
 * Structure exercised: hierarchical stream segmentation (level-1 =
 * dimensions, level-2 = centroids) and a small shared centroid table
 * multicast to every lane.
 */

#ifndef TS_WORKLOADS_CENTROID_HH
#define TS_WORKLOADS_CENTROID_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** Centroid workload parameters. */
struct CentroidParams
{
    std::uint64_t points = 1024;
    std::uint64_t k = 8;
    std::uint64_t dims = 4;
    std::uint64_t pointsPerTask = 64;
    std::uint64_t seed = 7;
};

/** Min squared distance from each point to the centroid set. */
class CentroidWorkload : public Workload
{
  public:
    explicit CentroidWorkload(const CentroidParams& p) : p_(p) {}

    std::string name() const override { return "centroid"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

  private:
    CentroidParams p_;
    Addr outAddr_ = 0;
    std::vector<std::int64_t> expected_;
};

} // namespace ts

#endif // TS_WORKLOADS_CENTROID_HH
