/**
 * @file
 * Tab-1: architecture parameters of the simulated Delta system.
 * A configuration dump (no simulation) so the evaluation context is
 * reproducible from the binary alone.  A one-task sanity run keeps
 * the binary an honest google-benchmark target.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

void
sanity(benchmark::State& state)
{
    SuiteParams sp;
    sp.scale = 0.25;
    for (auto _ : state) {
        const RunResult r =
            runOnce(Wk::Spmv, DeltaConfig::delta(8), sp);
        if (!r.correct)
            state.SkipWithError("incorrect result");
        state.counters["cycles"] = r.cycles;
    }
}

void
printTable()
{
    const DeltaConfig cfg = DeltaConfig::delta(8);
    std::puts("");
    std::puts("Tab-1  Simulated Delta architecture parameters");
    rule();
    auto row = [](const char* k, const std::string& v) {
        std::printf("%-36s %s\n", k, v.c_str());
    };
    const auto& g = cfg.lane.fabric.geom;
    row("lanes", std::to_string(cfg.lanes));
    row("fabric per lane",
        std::to_string(g.rows) + "x" + std::to_string(g.cols) +
            " tiles, link multiplicity " +
            std::to_string(g.linkMultiplicity));
    row("fabric reconfiguration",
        std::to_string(cfg.lane.fabric.configBaseCycles) + " + " +
            std::to_string(cfg.lane.fabric.configPerNodeCycles) +
            "/node cycles");
    row("port FIFOs / operand FIFOs",
        std::to_string(cfg.lane.fabric.portFifoDepth) + " / " +
            std::to_string(cfg.lane.fabric.operandFifoDepth) +
            " tokens");
    row("stream engines per lane",
        std::to_string(cfg.lane.numReadEngines) + " read, " +
            std::to_string(cfg.lane.numWriteEngines) + " write");
    row("memory-port MSHRs per lane",
        std::to_string(cfg.lane.maxOutstandingLines) + " lines");
    row("scratchpad per lane",
        std::to_string(cfg.lane.spm.sizeWords * wordBytes / 1024) +
            " KiB, " + std::to_string(cfg.lane.spm.portsPerCycle) +
            " ports/cycle");
    row("task queue per lane",
        std::to_string(cfg.laneQueueCap) + " entries");
    row("NoC", "2D mesh, XY routing, " +
                   std::to_string(cfg.nocLinks.linkWords) +
                   " words/cycle/link, multicast trees");
    row("DRAM banks", std::to_string(cfg.mem.numBanks));
    row("DRAM latency / bank occupancy",
        std::to_string(cfg.mem.serviceLatency) + " / " +
            std::to_string(cfg.mem.bankOccupancy) + " cycles");
    row("DRAM issue width",
        std::to_string(cfg.mem.issueWidth) + " lines/cycle");
    row("scheduling policy (Delta)", schedPolicyName(cfg.policy));
    row("baseline", "owner-compute static partition, "
                    "bulk-synchronous levels");
    rule();
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    benchmark::RegisterBenchmark("tab1/sanity", sanity)->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
