/**
 * @file
 * Fig-5: traffic effect of shared-read multicast recovery.
 *
 * For the shared-read workloads, compare DRAM lines read and NoC
 * word-hops with multicast recovery on vs off (all other mechanisms
 * held at the Delta configuration).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

const std::vector<Wk> kWorkloads = {Wk::Spmv, Wk::Join, Wk::Tricount,
                                    Wk::Centroid};

struct Traffic
{
    double dramLines = 0;
    double wordHops = 0;
    double cycles = 0;
};

std::map<Wk, std::pair<Traffic, Traffic>> gRows; // (off, on)

void
runWorkload(benchmark::State& state, Wk w)
{
    SuiteParams sp;
    for (auto _ : state) {
        Traffic t[2];
        for (const bool mcast : {false, true}) {
            DeltaConfig cfg = DeltaConfig::delta(8);
            cfg.enableMulticast = mcast;
            const RunResult r = runOnce(w, cfg, sp);
            if (!r.correct)
                state.SkipWithError("incorrect result");
            t[mcast ? 1 : 0] = Traffic{r.stats.get("mem.linesRead"),
                                       r.stats.get("noc.wordHops"),
                                       r.cycles};
        }
        gRows[w] = {t[0], t[1]};
        state.counters["dram_reduction"] =
            t[0].dramLines / t[1].dramLines;
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-5  Shared-read multicast: DRAM reads and NoC "
              "traffic (8 lanes; pipeline+work-aware held on)");
    rule(78);
    std::printf("%-10s %12s %12s %7s %12s %12s %7s\n", "workload",
                "dram w/o", "dram w/", "ratio", "hops w/o", "hops w/",
                "ratio");
    rule(78);
    for (const Wk w : kWorkloads) {
        const auto& [off, on] = gRows.at(w);
        std::printf("%-10s %12.0f %12.0f %6.2fx %12.0f %12.0f %6.2fx\n",
                    wkName(w), off.dramLines, on.dramLines,
                    off.dramLines / on.dramLines, off.wordHops,
                    on.wordHops, off.wordHops / on.wordHops);
    }
    rule(78);
    std::puts("expected shape: one multicast fill replaces per-task "
              "fetches, cutting DRAM reads by roughly the sharing "
              "degree on shared-heavy workloads");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    for (const Wk w : kWorkloads) {
        benchmark::RegisterBenchmark(
            (std::string("fig5/") + wkName(w)).c_str(),
            [w](benchmark::State& s) { runWorkload(s, w); })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
