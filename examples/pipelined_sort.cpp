/**
 * @file
 * Pipelined-sort scenario: a merge-sort task tree whose edges are
 * annotated as Pipeline dependences.  Shows how Delta recovers the
 * destroyed producer-consumer structure — co-dispatching whole tree
 * regions and forwarding merged runs between lanes — and reports the
 * pipe statistics that make the recovery visible.
 *
 *   $ ./build/examples/pipelined_sort
 */

#include <cstdio>

#include "driver/run_one.hh"
#include "workloads/msort.hh"

using namespace ts;

namespace
{

driver::RunOptions gOpt;

void
runConfig(const char* label, bool enablePipeline,
          std::uint32_t lanes)
{
    MsortParams params;
    params.n = 16384;
    params.leafSize = 1024;
    MsortWorkload wl(params);

    driver::RunSpec spec;
    spec.cfg = DeltaConfig::delta(lanes);
    spec.cfg.enablePipeline = enablePipeline;
    spec.tag = std::string("pipelined_sort_l") + std::to_string(lanes);
    spec.build = [&](Delta& d, TaskGraph& g) { wl.build(d, g); };
    std::uint64_t activated = 0, degraded = 0;
    spec.check = [&](Delta& d) {
        activated = d.dispatcher().pipesActivated();
        degraded = d.dispatcher().pipesDegraded();
        return wl.check(d.image());
    };
    const driver::RunResult r = driver::runOne(gOpt, spec);

    double pipeTokens = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        pipeTokens += r.stats.getOr(
            "lane" + std::to_string(l) + ".pipeTokens", 0);
    }
    std::printf("  %-26s %9.0f cycles   pipes %2llu/%llu activated   "
                "%8.0f tokens forwarded   %s\n",
                label, r.cycles,
                static_cast<unsigned long long>(activated),
                static_cast<unsigned long long>(activated + degraded),
                pipeTokens, r.correct ? "ok" : "WRONG");
}

} // namespace

int
main(int argc, char** argv)
{
    gOpt = driver::parseCommandLineOrExit(argc, argv);
    std::printf("Merge sort of 16384 keys (16 leaves + 15 pipelined "
                "merge tasks)\n\n");
    runConfig("memory round trips, 8 ln", false, 8);
    runConfig("pipelined,          8 ln", true, 8);
    runConfig("memory round trips, 16 ln", false, 16);
    runConfig("pipelined,          16 ln", true, 16);
    std::printf("\nLeaf-to-merge edges degrade by design (coarse "
                "sorter kernels cannot forward);\nmerge-to-merge "
                "edges activate and the tree executes as one "
                "dataflow pipeline.\n");
    return 0;
}
