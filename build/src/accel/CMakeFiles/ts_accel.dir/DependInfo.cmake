
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/area_model.cc" "src/accel/CMakeFiles/ts_accel.dir/area_model.cc.o" "gcc" "src/accel/CMakeFiles/ts_accel.dir/area_model.cc.o.d"
  "/root/repo/src/accel/delta.cc" "src/accel/CMakeFiles/ts_accel.dir/delta.cc.o" "gcc" "src/accel/CMakeFiles/ts_accel.dir/delta.cc.o.d"
  "/root/repo/src/accel/energy_model.cc" "src/accel/CMakeFiles/ts_accel.dir/energy_model.cc.o" "gcc" "src/accel/CMakeFiles/ts_accel.dir/energy_model.cc.o.d"
  "/root/repo/src/accel/lane.cc" "src/accel/CMakeFiles/ts_accel.dir/lane.cc.o" "gcc" "src/accel/CMakeFiles/ts_accel.dir/lane.cc.o.d"
  "/root/repo/src/accel/mem_node.cc" "src/accel/CMakeFiles/ts_accel.dir/mem_node.cc.o" "gcc" "src/accel/CMakeFiles/ts_accel.dir/mem_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/task/CMakeFiles/ts_task.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ts_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ts_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ts_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cgra/CMakeFiles/ts_cgra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
