/**
 * @file
 * NoC message payloads exchanged between the dispatcher, lane task
 * units, and the memory controller — including the dynamic-spawn and
 * work-stealing protocols (DESIGN.md §9).
 */

#ifndef TS_TASK_MESSAGES_HH
#define TS_TASK_MESSAGES_HH

#include <optional>
#include <string>
#include <vector>

#include "cgra/token.hh"
#include "task/task_graph.hh"
#include "task/task_types.hh"

namespace ts
{

/**
 * Work-stealing policy of the lane task units.  Idle units probe
 * peers over the NoC (nearest first, by hop distance); overloaded
 * units answer with queued tasks the dispatcher marked migratable.
 */
enum class StealPolicy : std::uint8_t
{
    None,      ///< never steal (seed behaviour)
    StealOne,  ///< take one task from the back of the victim's queue
    StealHalf, ///< take half of the victim's stealable backlog
};

/** Policy name for stats, sweeps, and cache keys. */
inline const char*
stealPolicyName(StealPolicy p)
{
    switch (p) {
      case StealPolicy::None: return "none";
      case StealPolicy::StealOne: return "steal-one";
      case StealPolicy::StealHalf: return "steal-half";
    }
    return "?";
}

/** Parse a steal-policy name; returns false on unknown input. */
inline bool
stealPolicyFromName(const std::string& s, StealPolicy& out)
{
    if (s == "none") { out = StealPolicy::None; return true; }
    if (s == "steal-one") { out = StealPolicy::StealOne; return true; }
    if (s == "steal-half") { out = StealPolicy::StealHalf; return true; }
    return false;
}

/**
 * One spatial-landing gate of a dispatch: the consumer must see
 * @p dones end-of-stream markers for @p group before it may start
 * (barrier semantics over forwarded producer streams, DESIGN.md §10).
 * The same list names the groups to release on task completion.
 */
struct SpatialWait
{
    std::uint64_t group = 0; ///< (consumer uid << 3) | input port
    std::uint32_t dones = 0; ///< forwarding producers to wait for
};

/**
 * Producer lane -> consumer lane: a spatially forwarded stream
 * chunk.  Timing-only — the functional words are already in the
 * global memory image; the consumer reads them from its landing zone
 * at scratchpad speed once the group's done markers are in.
 */
struct SpatialChunkMsg
{
    std::uint64_t group = 0;
    std::uint32_t words = 0; ///< may be 0 (pure done marker)
    bool done = false;       ///< producer's stream end for this group
};

/** Registration of a shared-read group at a member lane. */
struct GroupSetupMsg
{
    std::uint32_t group = 0;
    Addr rangeBase = 0;           ///< DRAM byte base of the range
    std::uint64_t words = 0;      ///< range length in words
    std::uint64_t landingOffset = 0; ///< SPM word offset of the copy
};

/** Dispatcher -> lane: run this task. */
struct DispatchMsg
{
    TaskId uid = 0;
    TaskTypeId type = 0;
    std::vector<StreamDesc> inputs;   ///< resolved descriptors
    std::vector<WriteDesc> outputs;   ///< resolved destinations
    double workEst = 1.0;

    /** Cycle the dispatcher committed this dispatch (end-to-end task
     *  latency statistics at the executing lane). */
    Tick dispatchedAt = 0;

    /** Gate start on this group's fill completion (kNoGroup: none). */
    std::uint32_t waitGroup = kNoGroup;

    /** Pipe buffers to release when the task completes. */
    std::vector<std::uint64_t> releasePipes;

    /** Spatial-landing groups gating task start (and released at
     *  completion); empty outside SchedPolicy::Spatial. */
    std::vector<SpatialWait> waitSpatial;

    /** Whether a peer lane may steal this task while it queues.  Set
     *  by the dispatcher only for solo dispatches (no pipeline
     *  co-dispatch batch to keep in lane order). */
    bool stealable = false;
};

/** Lane -> dispatcher: task began execution. */
struct StartMsg
{
    TaskId uid = 0;
    std::uint32_t lane = 0;
};

/** Lane -> dispatcher: task finished. */
struct CompleteMsg
{
    TaskId uid = 0;
    std::uint32_t lane = 0;
};

/** Producer lane -> consumer lane: forwarded stream chunk. */
struct PipeChunkMsg
{
    std::uint64_t pipeId = 0;
    std::vector<Token> toks;
};

/**
 * Lane -> dispatcher: a running task submits successors.  Travels the
 * same src->dst path as the spawner's CompleteMsg, and per-path FIFO
 * ordering guarantees the dispatcher integrates the spawn before it
 * sees the completion.
 */
struct SpawnMsg
{
    TaskId spawner = 0;
    std::uint32_t lane = 0;
    SpawnSet set;
};

/** Idle lane -> peer lane: probe for queued stealable work. */
struct StealRequestMsg
{
    std::uint32_t thiefLane = 0;
    std::uint32_t thiefNode = 0;
};

/** Victim lane -> thief lane: migrated tasks (back of the queue). */
struct StealGrantMsg
{
    std::uint32_t victimLane = 0;
    std::vector<DispatchMsg> tasks;
};

/** Victim lane -> thief lane: nothing stealable right now. */
struct StealDenyMsg
{
    std::uint32_t victimLane = 0;
};

/** Victim lane -> dispatcher: ownership of these uids moved. */
struct StealNotifyMsg
{
    std::uint32_t fromLane = 0;
    std::uint32_t toLane = 0;
    std::vector<TaskId> uids;
};

/** Tag bit marking a memory request as a shared-group fill. */
constexpr std::uint64_t kSharedFillTagBit = std::uint64_t{1} << 63;

/** Encode/decode shared-fill tags (group id in the low bits). */
inline std::uint64_t
sharedFillTag(std::uint32_t group)
{
    return kSharedFillTagBit | group;
}

inline bool
isSharedFillTag(std::uint64_t tag)
{
    return (tag & kSharedFillTagBit) != 0;
}

inline std::uint32_t
sharedFillGroup(std::uint64_t tag)
{
    return static_cast<std::uint32_t>(tag & 0xffffffffu);
}

} // namespace ts

#endif // TS_TASK_MESSAGES_HH
