#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>

#include "sim/logging.hh"

namespace ts
{

void
StatSet::set(const std::string& name, double value)
{
    values_[name] = value;
}

void
StatSet::add(const std::string& name, double value)
{
    values_[name] += value;
}

bool
StatSet::has(const std::string& name) const
{
    return values_.count(name) != 0;
}

double
StatSet::get(const std::string& name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        fatal("unknown statistic '", name, "'");
    return it->second;
}

double
StatSet::getOr(const std::string& name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double
StatSet::sumPrefix(const std::string& prefix) const
{
    double sum = 0.0;
    for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second;
    }
    return sum;
}

std::vector<std::pair<std::string, double>>
StatSet::matchPrefix(const std::string& prefix) const
{
    std::vector<std::pair<std::string, double>> out;
    for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.emplace_back(it->first, it->second);
    }
    return out;
}

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [name, value] : values_)
        os << std::left << std::setw(48) << name << " " << value << "\n";
}

void
StatSet::dumpJson(std::ostream& os) const
{
    os << "{";
    bool first = true;
    const auto precision = os.precision();
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto& [name, value] : values_) {
        os << (first ? "\n" : ",\n") << "  \"" << name << "\": ";
        // NaN/inf are not valid JSON numbers; emit null instead.
        if (std::isfinite(value))
            os << value;
        else
            os << "null";
        first = false;
    }
    os << "\n}\n" << std::setprecision(static_cast<int>(precision));
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0)
{
    TS_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void
Histogram::sample(double v)
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    ++buckets_[i];
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void
Histogram::report(StatSet& stats, const std::string& prefix) const
{
    stats.set(prefix + ".count", static_cast<double>(count_));
    stats.set(prefix + ".mean", mean());
    stats.set(prefix + ".max", max_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        stats.set(prefix + ".bucket" + std::to_string(i),
                  static_cast<double>(buckets_[i]));
    }
}

} // namespace ts
