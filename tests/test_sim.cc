/**
 * @file
 * Unit tests for the simulation kernel: channels (two-phase
 * visibility, capacity), event queue ordering, simulator quiescence,
 * RNG determinism and distributions, statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace ts
{
namespace
{

TEST(Channel, ValuesBecomeVisibleAfterCommitOnly)
{
    Channel<int> ch("c", 4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.empty()) << "pushed value visible before commit";
    ch.commit();
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 1);
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, CapacityCountsStagedAndVisible)
{
    Channel<int> ch("c", 2);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_FALSE(ch.push(3)) << "staged values must count";
    ch.commit();
    EXPECT_FALSE(ch.push(3)) << "visible values must count";
    ch.pop();
    EXPECT_TRUE(ch.push(3));
}

TEST(Channel, UnboundedWhenCapacityZero)
{
    Channel<int> ch("c", 0);
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(ch.push(i));
    ch.commit();
    EXPECT_EQ(ch.size(), 1000u);
    EXPECT_EQ(ch.maxOccupancy(), 1000u);
}

TEST(Channel, FifoOrderPreserved)
{
    Channel<int> ch("c", 0);
    for (int i = 0; i < 10; ++i)
        ch.push(i);
    ch.commit();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ch.pop(), i);
}

TEST(Channel, QuiescentTracksBothPhases)
{
    Channel<int> ch("c", 4);
    EXPECT_TRUE(ch.quiescent());
    ch.push(1);
    EXPECT_FALSE(ch.quiescent());
    ch.commit();
    EXPECT_FALSE(ch.quiescent());
    ch.pop();
    EXPECT_TRUE(ch.quiescent());
}

TEST(EventQueue, FiresInTimeThenInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(3, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.fireUpTo(2);
    EXPECT_TRUE(order.empty());
    eq.fireUpTo(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CallbackMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] { ++fired; });
    });
    eq.fireUpTo(1);
    EXPECT_EQ(fired, 1);
    eq.fireUpTo(2);
    EXPECT_EQ(fired, 2);
}

/** A component that counts down for N cycles then goes idle. */
class Countdown : public Ticked
{
  public:
    explicit Countdown(int n) : Ticked("countdown"), left_(n) {}

    void
    tick(Tick) override
    {
        if (left_ > 0)
            --left_;
    }

    bool busy() const override { return left_ > 0; }

    int left_;
};

TEST(Simulator, RunsUntilQuiescent)
{
    Simulator sim;
    Countdown c(17);
    sim.add(&c);
    const Tick end = sim.run(1000);
    EXPECT_EQ(end, 17u);
    EXPECT_EQ(c.left_, 0);
}

TEST(Simulator, FatalOnDeadlockWithDiagnosis)
{
    Simulator sim;
    Countdown c(1 << 30);
    sim.add(&c);
    try {
        sim.run(100);
        FAIL() << "expected fatal";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("countdown"),
                  std::string::npos)
            << "diagnosis must name the busy component";
    }
}

TEST(Simulator, EventsKeepSimulationLive)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(50, [&] { fired = true; });
    const Tick end = sim.run(1000);
    EXPECT_TRUE(fired);
    EXPECT_GE(end, 50u);
}

TEST(Simulator, PendingChannelValueBlocksQuiescence)
{
    Simulator sim;
    auto& ch = sim.makeChannel<int>("c", 4);
    EXPECT_TRUE(sim.quiescent());
    ch.push(7);
    EXPECT_FALSE(sim.quiescent());
}

/** Pushes one value into a channel at a fixed cycle, then sleeps. */
class OneShotProducer : public Ticked
{
  public:
    OneShotProducer(Channel<int>* ch, Tick at)
        : Ticked("producer"), ch_(ch), at_(at)
    {
    }

    void
    tick(Tick now) override
    {
        if (now == at_) {
            ch_->push(1);
            done_ = true;
        }
        if (now >= at_)
            sleepOnWake();
        else
            sleepUntil(at_);
    }

    bool busy() const override { return !done_; }

  private:
    Channel<int>* ch_;
    Tick at_;
    bool done_ = false;
};

/** Sleeps until woken; drains its channel and records tick cycles. */
class SleepyConsumer : public Ticked
{
  public:
    explicit SleepyConsumer(Channel<int>* ch)
        : Ticked("consumer"), ch_(ch)
    {
    }

    void
    tick(Tick now) override
    {
        ticks.push_back(now);
        while (ch_ != nullptr && !ch_->empty())
            got.push_back(ch_->pop());
        sleepOnWake();
    }

    bool busy() const override { return false; }

    std::vector<Tick> ticks;
    std::vector<int> got;

  private:
    Channel<int>* ch_;
};

TEST(SimulatorSleep, EventAndChannelWakeSameCycleTickOnce)
{
    // A channel commit and an event firing both wake the consumer at
    // cycle 3; it must tick exactly once that cycle.
    Simulator sim;
    auto& ch = sim.makeChannel<int>("c", 0);
    OneShotProducer prod(&ch, 2);
    SleepyConsumer cons(&ch);
    sim.add(&prod);
    sim.add(&cons);
    ch.addObserver(&cons);
    sim.schedule(3, [] {}, &cons);

    sim.run(1000);

    EXPECT_EQ(std::count(cons.ticks.begin(), cons.ticks.end(),
                         Tick{3}),
              1)
        << "two wake sources in one cycle must yield one tick";
    ASSERT_EQ(cons.got.size(), 1u);
}

/** Busy for a few cycles, then requests a far-future timed wake. */
class Napper : public Ticked
{
  public:
    Napper() : Ticked("napper") {}

    void
    tick(Tick now) override
    {
        if (left_ > 0 && --left_ == 0)
            sleepUntil(now + 1000);
    }

    bool busy() const override { return left_ > 0; }

  private:
    int left_ = 3;
};

TEST(SimulatorSleep, TimedWakePastQuiescenceDoesNotExtendTheRun)
{
    // A pending sleepUntil from a non-busy component must not keep
    // the simulation alive: both modes quiesce at the same cycle.
    Tick fast = 0, naive = 0;
    {
        Simulator sim;
        Napper n;
        sim.add(&n);
        fast = sim.run(100000);
    }
    {
        Simulator sim;
        sim.setFastForward(false);
        Napper n;
        sim.add(&n);
        naive = sim.run(100000);
    }
    EXPECT_EQ(fast, naive);
    EXPECT_LT(fast, 1000u);
}

/** Pushes a burst of values into a channel in one cycle. */
class BurstProducer : public Ticked
{
  public:
    explicit BurstProducer(Channel<int>* ch)
        : Ticked("burst"), ch_(ch)
    {
    }

    void
    tick(Tick now) override
    {
        if (now == 0) {
            ch_->push(1);
            ch_->push(2);
            ch_->push(3);
            done_ = true;
        }
        sleepOnWake();
    }

    bool busy() const override { return !done_; }

  private:
    Channel<int>* ch_;
    bool done_ = false;
};

TEST(SimulatorSleep, MultiPushSameCycleWakesObserverOnceInOrder)
{
    // Three pushes in one cycle mark the channel dirty once: the
    // observer ticks once, seeing all values in FIFO order.
    Simulator sim;
    auto& ch = sim.makeChannel<int>("c", 0);
    BurstProducer prod(&ch);
    SleepyConsumer cons(&ch);
    sim.add(&prod);
    sim.add(&cons);
    ch.addObserver(&cons);

    sim.run(1000);

    EXPECT_EQ(std::count(cons.ticks.begin(), cons.ticks.end(),
                         Tick{1}),
              1);
    ASSERT_EQ(cons.got.size(), 3u);
    EXPECT_EQ(cons.got[0], 1);
    EXPECT_EQ(cons.got[1], 2);
    EXPECT_EQ(cons.got[2], 3);
}

TEST(SimulatorSleep, NaiveAndFastAgreeOnCycleCount)
{
    const auto runOnce = [](bool fastForward) {
        Simulator sim;
        sim.setFastForward(fastForward);
        auto& ch = sim.makeChannel<int>("c", 0);
        OneShotProducer prod(&ch, 5);
        SleepyConsumer cons(&ch);
        sim.add(&prod);
        sim.add(&cons);
        ch.addObserver(&cons);
        return sim.run(1000);
    };
    EXPECT_EQ(runOnce(true), runOnce(false));
}

TEST(EventQueue, LargeCallbacksSpillToTheHeapAndStillFire)
{
    // Captures beyond the small-buffer capacity take the heap path.
    EventQueue eq;
    std::array<std::uint64_t, 16> big{};
    big.fill(7);
    std::uint64_t sum = 0;
    eq.schedule(1, [big, &sum] {
        for (const std::uint64_t v : big)
            sum += v;
    });
    eq.fireUpTo(1);
    EXPECT_EQ(sum, 7u * 16u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(-5, 17);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 17);
    }
}

TEST(Rng, Uniform01MeanIsHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng r(13);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.zipf(100, 1.2);
        ASSERT_LT(v, 100u);
        if (v < 10)
            ++low;
        if (v >= 90)
            ++high;
    }
    EXPECT_GT(low, high * 5);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng r(15);
    const auto p = r.permutation(100);
    std::vector<bool> seen(100, false);
    for (const auto v : p) {
        ASSERT_LT(v, 100u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Stats, SetAddGetAndPrefixes)
{
    StatSet s;
    s.set("a.x", 1);
    s.add("a.y", 2);
    s.add("a.y", 3);
    s.set("b.z", 7);
    EXPECT_EQ(s.get("a.y"), 5);
    EXPECT_EQ(s.sumPrefix("a."), 6);
    EXPECT_EQ(s.matchPrefix("a.").size(), 2u);
    EXPECT_TRUE(s.has("b.z"));
    EXPECT_FALSE(s.has("b.w"));
    EXPECT_EQ(s.getOr("b.w", -1), -1);
    EXPECT_THROW(s.get("missing"), FatalError);
}

TEST(Stats, HistogramBucketsAndMoments)
{
    Histogram h({1.0, 10.0, 100.0});
    h.sample(0.5);
    h.sample(5);
    h.sample(50);
    h.sample(500);
    EXPECT_EQ(h.count(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.bucket(i), 1u);
    EXPECT_EQ(h.max(), 500);
    EXPECT_NEAR(h.mean(), (0.5 + 5 + 50 + 500) / 4, 1e-9);

    StatSet s;
    h.report(s, "h");
    EXPECT_EQ(s.get("h.count"), 4);
}

TEST(Types, WordReinterpretationRoundTrips)
{
    EXPECT_EQ(asInt(fromInt(-123456789)), -123456789);
    EXPECT_EQ(asDouble(fromDouble(3.14159)), 3.14159);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
}

} // namespace
} // namespace ts
