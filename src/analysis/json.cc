#include "analysis/json.hh"

#include <cctype>
#include <cstdlib>

namespace ts
{
namespace analysis
{

namespace
{

class Reader
{
  public:
    explicit Reader(const std::string& text) : s_(text) {}

    bool
    parse(Json& out)
    {
        skip();
        if (!value(out))
            return false;
        skip();
        return pos_ == s_.size();
    }

  private:
    bool
    value(Json& out)
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': out.kind = Json::Kind::Str; return string(out.str);
          case 't':
            out.kind = Json::Kind::Bool;
            out.b = true;
            return literal("true");
          case 'f':
            out.kind = Json::Kind::Bool;
            out.b = false;
            return literal("false");
          case 'n': out.kind = Json::Kind::Null; return literal("null");
          default: return number(out);
        }
    }

    bool
    object(Json& out)
    {
        out.kind = Json::Kind::Obj;
        ++pos_; // '{'
        skip();
        if (peek('}'))
            return true;
        for (;;) {
            std::string key;
            skip();
            if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
                return false;
            skip();
            if (pos_ >= s_.size() || s_[pos_++] != ':')
                return false;
            skip();
            Json v;
            if (!value(v))
                return false;
            out.obj.emplace(std::move(key), std::move(v));
            skip();
            if (peek('}'))
                return true;
            if (pos_ >= s_.size() || s_[pos_++] != ',')
                return false;
        }
    }

    bool
    array(Json& out)
    {
        out.kind = Json::Kind::Arr;
        ++pos_; // '['
        skip();
        if (peek(']'))
            return true;
        for (;;) {
            skip();
            Json v;
            if (!value(v))
                return false;
            out.arr.push_back(std::move(v));
            skip();
            if (peek(']'))
                return true;
            if (pos_ >= s_.size() || s_[pos_++] != ',')
                return false;
        }
    }

    bool
    string(std::string& out)
    {
        ++pos_; // '"'
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return false;
            const char esc = s_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // ASCII round-trips; anything wider is replaced (the
                // simulator never emits non-ASCII keys).
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: return false;
            }
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing '"'
        return true;
    }

    bool
    number(Json& out)
    {
        const char* begin = s_.c_str() + pos_;
        char* end = nullptr;
        out.num = std::strtod(begin, &end);
        if (end == begin)
            return false;
        out.kind = Json::Kind::Num;
        pos_ += static_cast<std::size_t>(end - begin);
        return true;
    }

    bool
    literal(const char* lit)
    {
        for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        }
        return true;
    }

    void
    skip()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool
    peek(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string& text, Json& out)
{
    return Reader(text).parse(out);
}

} // namespace analysis
} // namespace ts
