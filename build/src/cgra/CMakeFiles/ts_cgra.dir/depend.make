# Empty dependencies file for ts_cgra.
# This may be replaced when dependencies are built.
