#include "sim/simulator.hh"

#include <sstream>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

void
Simulator::add(Ticked* t)
{
    TS_ASSERT(t != nullptr);
    ticked_.push_back(t);
}

void
Simulator::addChannel(ChannelBase* c)
{
    TS_ASSERT(c != nullptr);
    channels_.push_back(c);
}

void
Simulator::schedule(Tick delay, EventQueue::Callback cb)
{
    TS_ASSERT(delay >= 1, "events must be scheduled at least 1 cycle out");
    events_.schedule(now_ + delay, std::move(cb));
}

void
Simulator::doCycle()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);
    for (Ticked* t : ticked_)
        t->tick(now_);
    for (ChannelBase* c : channels_)
        c->commit();
    ++now_;
}

bool
Simulator::quiescent() const
{
    if (!events_.empty())
        return false;
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            return false;
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            return false;
    }
    return true;
}

Tick
Simulator::run(Tick maxCycles)
{
    const Tick start = now_;
    while (now_ - start < maxCycles) {
        if (quiescent())
            return now_;
        doCycle();
    }
    if (quiescent())
        return now_;

    // Deadlock / overrun: identify what is still live for diagnosis.
    std::ostringstream os;
    os << "simulation did not quiesce within " << maxCycles
       << " cycles; still live:";
    if (!events_.empty())
        os << " [" << events_.size() << " events]";
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            os << " channel:" << c->name();
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            os << " busy:" << t->name();
    }
    fatal(os.str());
}

void
Simulator::step(Tick cycles)
{
    for (Tick i = 0; i < cycles; ++i)
        doCycle();
}

void
Simulator::reportStats(StatSet& stats) const
{
    for (const Ticked* t : ticked_)
        t->reportStats(stats);
    stats.set("sim.cycles", static_cast<double>(now_));
}

} // namespace ts
