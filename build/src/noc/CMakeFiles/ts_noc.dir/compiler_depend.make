# Empty compiler generated dependencies file for ts_noc.
# This may be replaced when dependencies are built.
