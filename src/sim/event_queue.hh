/**
 * @file
 * A simple discrete-event queue used for modeling fixed latencies
 * (DRAM service, functional-unit pipelines) alongside the per-cycle
 * ticked components.
 *
 * Callbacks are stored in a small-buffer SmallFn instead of
 * std::function: the hot path (a lambda capturing a pointer and a
 * packet-sized payload) never touches the heap.  An event may carry an
 * owner component; the simulator wakes the owner when the event fires
 * so sleeping components resume on their scheduled latencies.
 */

#ifndef TS_SIM_EVENT_QUEUE_HH
#define TS_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace ts
{

class Ticked;

namespace obs
{
class FlightRecorder;
}

/**
 * A move-only callable with inline storage for small captures.
 *
 * Functors up to kInlineBytes that are nothrow-move-constructible are
 * stored inline; anything larger falls back to a single heap
 * allocation (the same cost std::function pays for every capture
 * beyond its tiny SSO buffer).
 */
class SmallFn
{
  public:
    SmallFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn>>>
    SmallFn(F&& f) // NOLINT: intentionally implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn&>,
                      "SmallFn requires a void() callable");
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (buf_) Fn(std::forward<F>(f));
            ops_ = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn**>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &kHeapOps<Fn>;
        }
    }

    SmallFn(SmallFn&& o) noexcept : ops_(o.ops_)
    {
        if (ops_ != nullptr)
            ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
    }

    SmallFn&
    operator=(SmallFn&& o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_ != nullptr)
                ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
        return *this;
    }

    SmallFn(const SmallFn&) = delete;
    SmallFn& operator=(const SmallFn&) = delete;

    ~SmallFn() { reset(); }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    /** Inline capture budget; covers a this-pointer plus a packet. */
    static constexpr std::size_t kInlineBytes = 48;

    struct Ops
    {
        void (*invoke)(void*);
        /** Move-construct into @p to and destroy the source. */
        void (*relocate)(void* from, void* to);
        void (*destroy)(void*);
    };

    template <typename Fn>
    static constexpr Ops kInlineOps{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* from, void* to) {
            new (to) Fn(std::move(*static_cast<Fn*>(from)));
            static_cast<Fn*>(from)->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps{
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* from, void* to) {
            *static_cast<Fn**>(to) = *static_cast<Fn**>(from);
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
    };

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

/**
 * Min-heap of (tick, sequence) ordered callbacks.  Events scheduled
 * for the same tick fire in scheduling order (deterministic).
 */
class EventQueue
{
  public:
    using Callback = SmallFn;

    /**
     * Schedule a callback at an absolute tick (>= current tick).
     * When @p owner is non-null the component is woken (see
     * Ticked::requestWake) just after the callback fires, so a
     * sleeping owner reacts to its own latency events.
     */
    void schedule(Tick when, Callback cb, Ticked* owner = nullptr);

    /**
     * Schedule a *weak* callback: it fires like a normal event but
     * does not keep the simulation alive.  Weak events are invisible
     * to empty()/size()/nextTick(), so quiescence detection and
     * deadlock diagnosis ignore them; the fast-forward loop still
     * stops at weak ticks (see Simulator::runFast) so observers such
     * as the timeline sampler fire at exact simulated times without
     * perturbing execution.
     */
    void scheduleWeak(Tick when, Callback cb);

    /** Fire every event (strong, then weak) at or before @p now. */
    void fireUpTo(Tick now);

    /** Whether any *strong* event is pending. */
    bool empty() const { return heap_.empty(); }

    /** Tick of the earliest pending strong event; panics when empty. */
    Tick nextTick() const;

    /** Number of pending strong events. */
    std::size_t size() const { return heap_.size(); }

    /** Whether any weak event is pending. */
    bool hasWeak() const { return !weakHeap_.empty(); }

    /** Tick of the earliest pending weak event; panics when empty. */
    Tick nextWeakTick() const;

    /** Drop all pending weak events (end-of-run cleanup). */
    void clearWeak();

    /** Attach a flight recorder notified on every strong-event fire
     *  (null detaches; weak observer events are not recorded). */
    void setRecorder(obs::FlightRecorder* rec) { recorder_ = rec; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        Ticked* owner;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::priority_queue<Entry, std::vector<Entry>, Later> weakHeap_;
    std::uint64_t nextSeq_ = 0;
    obs::FlightRecorder* recorder_ = nullptr;
};

} // namespace ts

#endif // TS_SIM_EVENT_QUEUE_HH
