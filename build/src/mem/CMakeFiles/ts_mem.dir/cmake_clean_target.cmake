file(REMOVE_RECURSE
  "libts_mem.a"
)
