/**
 * @file
 * Fig-1 (headline): Delta (TaskStream: work-aware balancing +
 * pipelined dependences + shared-read multicast) versus the
 * equivalent static-parallel design, per workload and geomean.
 *
 * Reproduction target (from the paper's abstract): the TaskStream
 * execution model improves performance by ~2.2x over the equivalent
 * static-parallel design.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

struct Row
{
    double staticCycles = 0;
    double deltaCycles = 0;
    bool correct = false;
};

std::map<Wk, Row> gRows;

void
runPair(benchmark::State& state, Wk w)
{
    const SuiteParams sp = suiteParams();
    for (auto _ : state) {
        const RunResult stat =
            runOnce(w, DeltaConfig::staticBaseline(8), sp);
        const RunResult dyn = runOnce(w, DeltaConfig::delta(8), sp);
        Row row;
        row.staticCycles = stat.cycles;
        row.deltaCycles = dyn.cycles;
        row.correct = stat.correct && dyn.correct;
        gRows[w] = row;
        state.counters["static_cycles"] = stat.cycles;
        state.counters["delta_cycles"] = dyn.cycles;
        state.counters["speedup"] = stat.cycles / dyn.cycles;
    }
}

void
registerAll()
{
    for (const Wk w : suiteWorkloads()) {
        benchmark::RegisterBenchmark(
            (std::string("fig1/") + wkName(w)).c_str(),
            [w](benchmark::State& s) { runPair(s, w); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-1  Delta (TaskStream) vs equivalent static-parallel "
              "design, 8 lanes");
    rule();
    std::printf("%-10s %14s %14s %9s %8s\n", "workload", "static(cyc)",
                "delta(cyc)", "speedup", "correct");
    rule();
    std::vector<double> speedups;
    for (const Wk w : suiteWorkloads()) {
        if (gRows.count(w) == 0)
            continue; // filtered out by --benchmark_filter
        const Row& r = gRows.at(w);
        const double sp = r.staticCycles / r.deltaCycles;
        speedups.push_back(sp);
        std::printf("%-10s %14.0f %14.0f %8.2fx %8s\n", wkName(w),
                    r.staticCycles, r.deltaCycles, sp,
                    r.correct ? "yes" : "NO");
    }
    rule();
    std::printf("%-10s %14s %14s %8.2fx\n", "geomean", "", "",
                geomean(speedups));
    std::puts("paper claim (abstract): ~2.2x overall improvement");
}

} // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
