/**
 * @file
 * Placement-and-routing of a DFG onto the CGRA grid.
 *
 * The fabric is circuit-switched: every DFG edge gets a dedicated
 * path of physical links (each adjacent tile pair provides
 * `linkMultiplicity` parallel links per direction).  The mapper
 * places nodes greedily in topological order near their producers
 * and routes each incoming edge with capacity-aware BFS.
 */

#ifndef TS_CGRA_MAPPING_HH
#define TS_CGRA_MAPPING_HH

#include <cstdint>
#include <vector>

#include "cgra/dfg.hh"

namespace ts
{

/** Physical dimensions of a fabric. */
struct FabricGeometry
{
    std::uint32_t rows = 6;
    std::uint32_t cols = 6;
    std::uint32_t linkMultiplicity = 2;

    std::uint32_t numTiles() const { return rows * cols; }
};

/** The result of mapping one DFG onto a fabric. */
struct MappedDfg
{
    const Dfg* dfg = nullptr;
    FabricGeometry geom;

    /** Node id -> tile id. */
    std::vector<std::uint32_t> nodeTile;

    /** One route per DFG edge, in dfg->edges() order. */
    struct Route
    {
        DfgEdge edge;
        /** Tile path, front() = producer tile, back() = consumer. */
        std::vector<std::uint32_t> path;
    };
    std::vector<Route> routes;

    /** Longest route in hops (pipeline-depth contribution). */
    std::uint32_t maxRouteHops() const;

    /** Total physical links consumed (area/occupancy metric). */
    std::uint32_t totalLinks() const;
};

/** Greedy placer + capacity-aware BFS router. */
class Mapper
{
  public:
    explicit Mapper(const FabricGeometry& geom) : geom_(geom) {}

    /**
     * Map @p dfg onto the fabric.  fatal() if the graph does not fit
     * (too many nodes, or routing congestion beyond capacity).
     */
    MappedDfg map(const Dfg& dfg) const;

  private:
    MappedDfg mapAttempt(const Dfg& dfg, std::uint32_t salt) const;

    FabricGeometry geom_;
};

} // namespace ts

#endif // TS_CGRA_MAPPING_HH
