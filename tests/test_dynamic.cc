/**
 * @file
 * Dynamic-dependence engine tests (DESIGN.md §9): the live TaskGraph
 * (edges in any order, online cycle rejection, successor transfer)
 * and the dispatcher's runtime half of the same contract — tasks
 * spawned from inside running tasks, edges to running or completed
 * producers, transfer-on-early-finish re-gating consumers, and
 * spawned cycles dying loudly instead of deadlocking.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/delta.hh"
#include "task/task_graph.hh"
#include "workloads/workload.hh"

using namespace ts;

namespace
{

/** A builtin that writes one word and models @p cycles of compute. */
BuiltinBody
writerBody(Addr addr, std::int64_t value, std::uint64_t cycles = 8)
{
    BuiltinBody b;
    b.apply = [addr, value](MemImage& img, const TaskInstance&) {
        img.writeInt(addr, value);
    };
    b.cycles = [cycles](const MemImage&, const TaskInstance&) {
        return cycles;
    };
    b.outputWords = [](const MemImage&, const TaskInstance&) {
        return std::uint64_t(0);
    };
    return b;
}

/** A builtin that copies one word src -> dst when it executes. */
BuiltinBody
copyBody(Addr src, Addr dst, std::uint64_t cycles = 8)
{
    BuiltinBody b;
    b.apply = [src, dst](MemImage& img, const TaskInstance&) {
        img.writeInt(dst, img.readInt(src));
    };
    b.cycles = [cycles](const MemImage&, const TaskInstance&) {
        return cycles;
    };
    b.outputWords = [](const MemImage&, const TaskInstance&) {
        return std::uint64_t(0);
    };
    return b;
}

} // namespace

// ---------------------------------------------------------------------
// Host-side TaskGraph: the live-graph API.
// ---------------------------------------------------------------------

TEST(TaskGraphDynamic, EdgesAcceptedInAnyOrder)
{
    TaskGraph g;
    const TaskHandle a = g.addTask(0, {}, {});
    const TaskHandle b = g.addTask(0, {}, {});
    const TaskHandle c = g.addTask(0, {}, {});

    // A back edge (later task gates an earlier one) — rejected by the
    // old topological-submission precondition, legal now.
    g.addBarrier(c, a);
    g.addBarrier(b.completion(), a);

    const std::vector<TaskId> order = g.topoOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.back(), a.id());
}

TEST(TaskGraphDynamic, CycleIsRejectedAtEdgeAddTime)
{
    TaskGraph g;
    const TaskHandle a = g.addTask(0, {}, {});
    const TaskHandle b = g.addTask(0, {}, {});
    g.addBarrier(a, b);
    EXPECT_THROW(g.addBarrier(b, a), PanicError);
    EXPECT_THROW(g.addBarrier(a, a), PanicError);
}

TEST(TaskGraphDynamic, TransferSuccessorsRehangsPendingEdges)
{
    TaskGraph g;
    WriteDesc out;
    out.base = 0;
    const StreamDesc in = StreamDesc::linear(Space::Dram, 0, 8);
    const TaskHandle a = g.addTask(0, {in}, {out});
    const TaskHandle b = g.addTask(0, {in}, {out});
    const TaskHandle c = g.addTask(0, {in}, {out});
    g.addBarrier(a, c);
    g.addPipeline(a, 0, c, 0);

    g.transferSuccessors(a, b);

    ASSERT_EQ(g.edges().size(), 2u);
    for (const DepEdge& e : g.edges()) {
        EXPECT_EQ(e.producer, b.id());
        EXPECT_EQ(e.consumer, c.id());
        // Forwarded stream identity does not survive the transfer.
        EXPECT_EQ(e.kind, DepKind::Barrier);
    }
}

// ---------------------------------------------------------------------
// Dispatcher-side dynamics, driven through small Delta runs.
// ---------------------------------------------------------------------

TEST(DispatcherDynamic, SpawnedEdgeToRunningProducerIsHonored)
{
    Delta delta(DeltaConfig::delta(2));
    MemImage& img = delta.image();
    const Addr x = img.allocWords(1);
    const Addr y = img.allocWords(1);

    const TaskTypeId readerTy =
        delta.registry().addBuiltinType("reader", copyBody(x, y));

    // The spawner names *itself* (a running task) as the producer of
    // the spawned consumer's gating edge.
    BuiltinBody spawner = writerBody(x, 42);
    spawner.spawn = [readerTy](MemImage&, const TaskInstance& inst,
                               SpawnSet& set) {
        const auto consumer = set.add(readerTy, {}, {});
        set.barrier(static_cast<std::int64_t>(inst.uid), consumer);
    };
    const TaskTypeId spawnerTy =
        delta.registry().addBuiltinType("spawner", std::move(spawner));

    TaskGraph g;
    g.addTask(spawnerTy, {}, {});
    const StatSet stats = delta.run(g);

    EXPECT_EQ(stats.get("dispatcher.tasksCompleted"), 2.0);
    EXPECT_EQ(stats.get("delta.tasksSpawned"), 1.0);
    EXPECT_EQ(img.readInt(y), 42);
}

TEST(DispatcherDynamic, TransferOnEarlyFinishRegatesConsumer)
{
    Delta delta(DeltaConfig::delta(2));
    MemImage& img = delta.image();
    const Addr x = img.allocWords(1);
    const Addr y = img.allocWords(1);

    // The heir runs long and only then publishes 99; the spawner
    // itself writes 7 and finishes almost immediately.
    const TaskTypeId heirTy = delta.registry().addBuiltinType(
        "heir", writerBody(x, 99, 10000));

    BuiltinBody spawner = writerBody(x, 7, 4);
    spawner.spawn = [heirTy](MemImage&, const TaskInstance&,
                             SpawnSet& set) {
        set.transferTo = set.add(heirTy, {}, {});
    };
    const TaskTypeId spawnerTy =
        delta.registry().addBuiltinType("spawner", std::move(spawner));
    const TaskTypeId readerTy =
        delta.registry().addBuiltinType("reader", copyBody(x, y));

    TaskGraph g;
    const TaskHandle a = g.addTask(spawnerTy, {}, {});
    const TaskHandle c = g.addTask(readerTy, {}, {});
    g.addBarrier(a, c);

    const StatSet stats = delta.run(g);

    // Without the transfer the reader would run as soon as the
    // spawner finished — thousands of cycles before the heir's write
    // — and copy 7 instead.
    EXPECT_EQ(stats.get("dispatcher.tasksCompleted"), 3.0);
    EXPECT_EQ(img.readInt(y), 99);
}

TEST(DispatcherDynamic, EdgeFromCompletedProducerIsSatisfied)
{
    Delta delta(DeltaConfig::delta(2));
    MemImage& img = delta.image();
    const Addr x = img.allocWords(1);
    const Addr y = img.allocWords(1);

    const TaskTypeId writerTy =
        delta.registry().addBuiltinType("writer", writerBody(x, 11));
    const TaskTypeId readerTy =
        delta.registry().addBuiltinType("reader", copyBody(x, y));

    TaskGraph g;
    const TaskHandle p = g.addTask(writerTy, {}, {});
    const TaskId pid = p.id();

    // The spawner is gated on the writer, so by the time it spawns,
    // the writer has completed; the spawned reader's edge from that
    // completed producer must count as already satisfied (no hang).
    BuiltinBody spawner;
    spawner.apply = [](MemImage&, const TaskInstance&) {};
    spawner.cycles = [](const MemImage&, const TaskInstance&) {
        return std::uint64_t(8);
    };
    spawner.outputWords = [](const MemImage&, const TaskInstance&) {
        return std::uint64_t(0);
    };
    spawner.spawn = [readerTy, pid](MemImage&, const TaskInstance&,
                                    SpawnSet& set) {
        const auto reader = set.add(readerTy, {}, {});
        set.barrier(static_cast<std::int64_t>(pid), reader);
    };
    const TaskTypeId spawnerTy =
        delta.registry().addBuiltinType("spawner", std::move(spawner));
    const TaskHandle s = g.addTask(spawnerTy, {}, {});
    g.addBarrier(p, s);

    const StatSet stats = delta.run(g);
    EXPECT_EQ(stats.get("dispatcher.tasksCompleted"), 3.0);
    EXPECT_EQ(img.readInt(y), 11);
}

TEST(DispatcherDynamic, SpawnedCycleIsFatal)
{
    Delta delta(DeltaConfig::delta(2));
    MemImage& img = delta.image();
    const Addr x = img.allocWords(1);

    const TaskTypeId leafTy =
        delta.registry().addBuiltinType("leaf", writerBody(x, 1));

    BuiltinBody spawner = writerBody(x, 0);
    spawner.spawn = [leafTy](MemImage&, const TaskInstance&,
                             SpawnSet& set) {
        const auto b = set.add(leafTy, {}, {});
        const auto m = set.add(leafTy, {}, {});
        set.barrier(b, m);
        set.barrier(m, b); // closes a cycle
    };
    const TaskTypeId spawnerTy =
        delta.registry().addBuiltinType("spawner", std::move(spawner));

    TaskGraph g;
    g.addTask(spawnerTy, {}, {});
    EXPECT_THROW(delta.run(g), PanicError);
}

// ---------------------------------------------------------------------
// End-to-end: the dynamic-spawn msort variant unfolds a whole tree
// from one submitted task, bit-identically to a fresh run.
// ---------------------------------------------------------------------

TEST(DispatcherDynamic, MsortDynUnfoldsTreeFromOneTask)
{
    SuiteParams sp;
    sp.scale = 0.25;
    auto wl = makeWorkload(Wk::MsortDyn, sp);

    Delta delta(DeltaConfig::delta(4));
    TaskGraph g;
    wl->build(delta, g);
    EXPECT_EQ(g.numTasks(), 1u);

    const StatSet stats = delta.run(g);
    EXPECT_TRUE(wl->check(delta.image()));
    EXPECT_GT(stats.get("delta.tasksSpawned"), 0.0);
    EXPECT_EQ(stats.get("dispatcher.tasksCompleted"),
              1.0 + stats.get("delta.tasksSpawned"));
}
