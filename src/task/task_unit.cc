#include "task/task_unit.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace ts
{

TaskUnit::TaskUnit(std::string name, const TaskTypeRegistry& registry,
                   TaskUnitPorts ports)
    : Ticked(std::move(name)), registry_(registry),
      ports_(std::move(ports))
{
    TS_ASSERT(ports_.fabric != nullptr && ports_.pipes != nullptr &&
              ports_.landing != nullptr && ports_.send &&
              ports_.memPort != nullptr && ports_.image != nullptr);
}

void
TaskUnit::deliver(DispatchMsg msg)
{
    inbox_.push_back(std::move(msg));
    rearmSteal();
    requestWake();
}

void
TaskUnit::queueMsg(PktKind kind, std::any payload,
                   std::uint32_t sizeWords)
{
    queueMsgTo(ports_.dispatcherNode, kind, std::move(payload),
               sizeWords);
}

void
TaskUnit::queueMsgTo(std::uint32_t dstNode, PktKind kind,
                     std::any payload, std::uint32_t sizeWords)
{
    Packet pkt;
    pkt.src = ports_.selfNode;
    pkt.dstMask = Packet::unicast(dstNode);
    pkt.kind = kind;
    pkt.sizeWords = sizeWords;
    pkt.payload = std::move(payload);
    sendQ_.push_back(std::move(pkt));
}

void
TaskUnit::rearmSteal()
{
    stealExhausted_ = false;
    stealProbeIdx_ = 0;
}

void
TaskUnit::maybeProbeSteal()
{
    if (ports_.steal == StealPolicy::None || ports_.victims.empty())
        return;
    if (stealWaiting_ || stealExhausted_ || !sendQ_.empty())
        return;
    const auto& [lane, node] = ports_.victims[stealProbeIdx_];
    (void)lane;
    ++stealReqSent_;
    queueMsgTo(node, PktKind::StealRequest,
               StealRequestMsg{ports_.laneIndex, ports_.selfNode}, 1);
    stealWaiting_ = true;
}

void
TaskUnit::onStealRequest(const StealRequestMsg& req)
{
    ++stealReqRecv_;
    std::vector<DispatchMsg> loot;
    if (ports_.steal != StealPolicy::None) {
        std::size_t stealable = 0;
        for (const DispatchMsg& m : inbox_)
            stealable += m.stealable ? 1 : 0;
        std::size_t want = 0;
        if (stealable > 0) {
            want = ports_.steal == StealPolicy::StealOne
                       ? 1
                       : (stealable + 1) / 2;
        }
        // Take from the back of the queue: the work that would have
        // waited longest here, and the least likely to be adjacent to
        // what this lane is already running.
        for (std::size_t i = inbox_.size();
             i-- > 0 && loot.size() < want;) {
            if (!inbox_[i].stealable)
                continue;
            loot.push_back(std::move(inbox_[i]));
            inbox_.erase(inbox_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        }
        std::reverse(loot.begin(), loot.end()); // keep queue order
    }
    if (loot.empty()) {
        queueMsgTo(req.thiefNode, PktKind::StealDeny,
                   StealDenyMsg{ports_.laneIndex}, 1);
    } else {
        tasksGivenOut_ += loot.size();
        std::uint32_t words = 1;
        std::vector<TaskId> uids;
        uids.reserve(loot.size());
        for (const DispatchMsg& m : loot) {
            words += 4 + 2 * static_cast<std::uint32_t>(
                                 m.inputs.size() + m.outputs.size());
            uids.push_back(m.uid);
        }
        // Inform the dispatcher first, then hand over the tasks; the
        // two travel different paths, so the dispatcher also tolerates
        // a thief's CompleteMsg overtaking the notify.
        queueMsgTo(ports_.dispatcherNode, PktKind::StealNotify,
                   StealNotifyMsg{ports_.laneIndex, req.thiefLane,
                                  uids},
                   1 + static_cast<std::uint32_t>(uids.size()));
        queueMsgTo(req.thiefNode, PktKind::StealGrant,
                   StealGrantMsg{ports_.laneIndex, std::move(loot)},
                   words);
    }
    requestWake();
}

void
TaskUnit::onStealGrant(StealGrantMsg msg)
{
    ++stealGrants_;
    stealWaiting_ = false;
    tasksStolenIn_ += msg.tasks.size();
    for (DispatchMsg& m : msg.tasks)
        inbox_.push_back(std::move(m));
    rearmSteal();
    requestWake();
}

void
TaskUnit::onStealDeny(const StealDenyMsg& msg)
{
    (void)msg;
    ++stealDenies_;
    stealWaiting_ = false;
    ++stealProbeIdx_;
    if (stealProbeIdx_ >= ports_.victims.size()) {
        // A full round of denies: stop probing until new activity
        // (a deliver or grant) re-arms the round, so an idle tail
        // does not spin the NoC forever.
        stealProbeIdx_ = 0;
        stealExhausted_ = true;
    }
    requestWake();
}

void
TaskUnit::sendPending()
{
    while (!sendQ_.empty()) {
        if (!ports_.send(sendQ_.front()))
            return;
        sendQ_.pop_front();
    }
}

void
TaskUnit::beginTask(Tick now)
{
    const TaskType& type = registry_.type(cur_.type);

    queueMsg(PktKind::TaskStart,
             StartMsg{cur_.uid, ports_.laneIndex}, 1);

    if (type.isBuiltin()) {
        // Stage input traffic through sink read streams.
        TS_ASSERT(cur_.inputs.size() <= ports_.readEngines.size(),
                  name(), ": task needs more read engines");
        for (std::size_t i = 0; i < cur_.inputs.size(); ++i)
            ports_.readEngines[i]->program(cur_.inputs[i], nullptr);
        phase_ = Phase::BuiltinRead;
        return;
    }

    ports_.fabric->configure(&type.mapped, now);
    phase_ = Phase::Config;
}

bool
TaskUnit::dfgExecutionDone() const
{
    for (std::size_t i = 0; i < cur_.inputs.size(); ++i) {
        if (ports_.readEngines[i]->active())
            return false;
    }
    for (std::size_t o = 0; o < cur_.outputs.size(); ++o) {
        if (ports_.writeEngines[o]->active())
            return false;
    }
    return ports_.fabric->drained();
}

CycleClass
TaskUnit::classify(bool fabricProgressed) const
{
    switch (phase_) {
      case Phase::Idle:
        if (!inbox_.empty())
            return CycleClass::Busy; // picks up a task this cycle
        return sendQ_.empty() ? CycleClass::Idle : CycleClass::NocWait;
      case Phase::WaitFill:
        return CycleClass::MemWait; // multicast landing in flight
      case Phase::Config:
      case Phase::BuiltinCompute:
        return CycleClass::Busy;
      case Phase::BuiltinWrite:
        return builtinWriteBlocked_ ? CycleClass::MemWait
                                    : CycleClass::Busy;
      case Phase::Finish:
        return sendQ_.empty() ? CycleClass::Busy : CycleClass::NocWait;
      case Phase::Running:
      case Phase::BuiltinRead: {
        // A cycle where the fabric fired a PE is forward progress,
        // however many fetches are still in flight (prefetch overlap
        // is the common case, not a stall).
        if (phase_ == Phase::Running && fabricProgressed)
            return CycleClass::Busy;
        bool mem = false;
        bool net = false;
        for (const ReadEngine* re : ports_.readEngines) {
            mem |= re->waitingOnMem();
            net |= re->waitingOnPipe();
        }
        for (const WriteEngine* we : ports_.writeEngines) {
            mem |= we->blockedOnMem();
            net |= we->blockedOnNoc();
        }
        if (mem)
            return CycleClass::MemWait;
        if (net)
            return CycleClass::NocWait;
        return CycleClass::Busy;
      }
    }
    return CycleClass::Idle;
}

void
TaskUnit::accountCycle()
{
    const std::uint64_t firings = ports_.fabric->firings();
    const CycleClass cls = classify(firings != lastFirings_);
    lastFirings_ = firings;
    buckets_.account(cls);
    if (trace::on() && (cls != lastClass_ || !stateSpanOpen_)) {
        auto* t = trace::active();
        const trace::TrackId tid = t->track(name() + ".state");
        if (stateSpanOpen_)
            t->end(tid);
        t->begin(tid, cycleClassName(cls));
        stateSpanOpen_ = true;
    }
    lastClass_ = cls;
}

void
TaskUnit::tick(Tick now)
{
    catchUp(now);
    expectedNext_ = now + 1;

    accountCycle();
    step(now);

    // Sleep decision.  Both sites must leave gapClass_/gapBusy_
    // matching what classify()/busyCycles_ would have produced on
    // every skipped cycle.
    if (phase_ == Phase::Idle && inbox_.empty() && sendQ_.empty()) {
        // classify() == Idle and busyCycles_ untouched until a
        // deliver() arrives (which wakes us the same cycle).
        gapClass_ = CycleClass::Idle;
        gapBusy_ = false;
        sleepOnWake();
    } else if (phase_ == Phase::BuiltinCompute && now < computeUntil_ &&
               sendQ_.empty()) {
        // classify() == Busy and busyCycles_ increments on every
        // cycle spent in BuiltinCompute; nothing external can change
        // that before computeUntil_.  A deliver() wake before then is
        // spurious but safe (we just resume per-cycle ticking).
        gapClass_ = CycleClass::Busy;
        gapBusy_ = true;
        sleepUntil(computeUntil_);
    }
}

void
TaskUnit::catchUp(Tick now)
{
    if (now > expectedNext_) {
        const std::uint64_t gap = now - expectedNext_;
        buckets_.account(gapClass_, gap);
        if (gapBusy_)
            busyCycles_ += gap;
        expectedNext_ = now;
    }
}

void
TaskUnit::step(Tick now)
{
    sendPending();

    if (phase_ != Phase::Idle)
        ++busyCycles_;

    switch (phase_) {
      case Phase::Idle:
        if (inbox_.empty()) {
            maybeProbeSteal();
            return;
        }
        cur_ = std::move(inbox_.front());
        inbox_.pop_front();
        startedAt_ = now;
        ++busyCycles_;
        if (trace::on()) {
            auto* t = trace::active();
            t->begin(t->track(name()),
                     registry_.type(cur_.type).name.c_str(),
                     trace::args("uid", cur_.uid, "workEst",
                                 cur_.workEst));
            t->counter(name().c_str(), "queueDepth",
                       static_cast<double>(queueDepth()));
        }
        phase_ = Phase::WaitFill;
        [[fallthrough]];

      case Phase::WaitFill:
        if (cur_.waitGroup != kNoGroup &&
            !ports_.landing->complete(cur_.waitGroup)) {
            ++waitFillCycles_;
            return;
        }
        // Spatial gates: every forwarding producer's done marker must
        // have landed before the inputs read at landing speed.
        for (const SpatialWait& w : cur_.waitSpatial) {
            if (!ports_.spatialLanding->complete(w.group, w.dones)) {
                ++waitFillCycles_;
                return;
            }
        }
        beginTask(now);
        return;

      case Phase::Config: {
        if (!ports_.fabric->ready(now)) {
            ++configWaitCycles_;
            return;
        }
        const TaskType& type = registry_.type(cur_.type);
        TS_ASSERT(cur_.inputs.size() == type.dfg->numInputs(),
                  name(), ": input count mismatch for ", type.name);
        TS_ASSERT(cur_.outputs.size() == type.dfg->numOutputs(),
                  name(), ": output count mismatch for ", type.name);
        TS_ASSERT(cur_.inputs.size() <= ports_.readEngines.size(),
                  name(), ": task needs more read engines");
        TS_ASSERT(cur_.outputs.size() <= ports_.writeEngines.size(),
                  name(), ": task needs more write engines");
        ports_.fabric->resetStreams();
        for (std::size_t i = 0; i < cur_.inputs.size(); ++i) {
            ports_.readEngines[i]->program(
                cur_.inputs[i],
                &ports_.fabric->inPort(
                    static_cast<std::uint32_t>(i)),
                ports_.fabric);
        }
        for (std::size_t o = 0; o < cur_.outputs.size(); ++o) {
            ports_.writeEngines[o]->program(
                cur_.outputs[o],
                &ports_.fabric->outPort(
                    static_cast<std::uint32_t>(o)));
        }
        phase_ = Phase::Running;
        return;
      }

      case Phase::Running:
        if (dfgExecutionDone())
            phase_ = Phase::Finish;
        return;

      case Phase::BuiltinRead: {
        for (std::size_t i = 0; i < cur_.inputs.size(); ++i) {
            if (ports_.readEngines[i]->active())
                return;
        }
        const TaskType& type = registry_.type(cur_.type);
        // Inputs staged: apply the functional effect and occupy the
        // fabric for the modeled compute time.
        // (The dispatch message carries resolved descriptors, but the
        // builtin body reads its own task description, so we pass a
        // reconstructed instance view.)
        TaskInstance view;
        view.uid = cur_.uid;
        view.type = cur_.type;
        view.inputs = cur_.inputs;
        view.outputs = cur_.outputs;
        type.builtin->apply(*ports_.image, view);
        if (type.builtin->spawn) {
            // Dynamic spawn: the body submits successors from the
            // lane.  The SpawnMsg shares the src->dst path with this
            // task's later CompleteMsg, so per-path FIFO ordering
            // guarantees the dispatcher integrates the spawn first.
            SpawnSet set;
            type.builtin->spawn(*ports_.image, view, set);
            if (!set.empty()) {
                std::uint32_t words = 2;
                for (const SpawnSet::Task& st : set.tasks) {
                    words += 2 + 2 * static_cast<std::uint32_t>(
                                         st.inputs.size() +
                                         st.outputs.size());
                }
                words += 2 * static_cast<std::uint32_t>(
                                 set.edges.size());
                queueMsg(PktKind::TaskSpawn,
                         SpawnMsg{cur_.uid, ports_.laneIndex,
                                  std::move(set)},
                         words);
            }
        }
        computeUntil_ = now + type.builtin->cycles(*ports_.image, view);
        builtinLinesLeft_ = divCeil<std::uint64_t>(
            type.builtin->outputWords(*ports_.image, view), lineWords);
        builtinWriteCursor_ =
            cur_.outputs.empty() ? 0 : lineAlign(cur_.outputs[0].base);
        builtinFwdAccum_ = 0;
        builtinFwdDoneSent_ = false;
        phase_ = Phase::BuiltinCompute;
        return;
      }

      case Phase::BuiltinCompute:
        if (now < computeUntil_)
            return;
        phase_ = Phase::BuiltinWrite;
        [[fallthrough]];

      case Phase::BuiltinWrite: {
        // Builtin bodies stream outputs[0] only; under spatial
        // mapping the same stream may be suppressed (every consumer
        // forwarded) and/or forwarded as chunks through the unit's
        // send queue (whose FIFO order puts them ahead of our
        // CompleteMsg injection).
        const WriteDesc* out =
            cur_.outputs.empty() ? nullptr : &cur_.outputs[0];
        std::uint32_t budget = 2;
        while (budget > 0 && builtinLinesLeft_ > 0) {
            if (out != nullptr && out->spatialSuppress) {
                ++spatialLinesSuppressed_;
            } else if (!ports_.memPort->writeLine(
                           builtinWriteCursor_)) {
                builtinWriteBlocked_ = true;
                return;
            }
            builtinWriteBlocked_ = false;
            builtinWriteCursor_ += lineBytes;
            --builtinLinesLeft_;
            --budget;
            if (out != nullptr && !out->spatialDsts.empty()) {
                builtinFwdAccum_ += lineWords;
                const bool last = builtinLinesLeft_ == 0;
                if (builtinFwdAccum_ >= out->chunkWords || last) {
                    for (const WriteDesc::SpatialDst& dst :
                         out->spatialDsts) {
                        queueMsgTo(
                            dst.node, PktKind::SpatialChunk,
                            SpatialChunkMsg{dst.group,
                                            builtinFwdAccum_, last},
                            builtinFwdAccum_ + 1);
                        ++spatialChunksSent_;
                    }
                    if (last)
                        builtinFwdDoneSent_ = true;
                    builtinFwdAccum_ = 0;
                }
            }
        }
        if (builtinLinesLeft_ > 0)
            return;
        builtinWriteBlocked_ = false;
        // A zero-output producer (e.g. an internal sort that spawns
        // its subtree and transfers successors) still owes its
        // consumers a done marker on each forwarded group.
        if (out != nullptr && !out->spatialDsts.empty() &&
            !builtinFwdDoneSent_) {
            for (const WriteDesc::SpatialDst& dst : out->spatialDsts) {
                queueMsgTo(dst.node, PktKind::SpatialChunk,
                           SpatialChunkMsg{dst.group, 0, true}, 1);
                ++spatialChunksSent_;
            }
            builtinFwdDoneSent_ = true;
        }
        phase_ = Phase::Finish;
        return;
      }

      case Phase::Finish:
        for (std::uint64_t pid : cur_.releasePipes)
            ports_.pipes->release(pid);
        for (const SpatialWait& w : cur_.waitSpatial)
            ports_.spatialLanding->release(w.group);
        queueMsg(PktKind::TaskComplete,
                 CompleteMsg{cur_.uid, ports_.laneIndex}, 1);
        ++tasksRun_;
        if (statsOn()) {
            const std::string& type = registry_.type(cur_.type).name;
            statSample("task." + type + ".serviceCycles",
                       static_cast<double>(now - startedAt_));
            statSample("task." + type + ".latencyCycles",
                       static_cast<double>(now - cur_.dispatchedAt));
        }
        if (trace::on()) {
            auto* t = trace::active();
            t->end(t->track(name()));
            t->counter(name().c_str(), "queueDepth",
                       static_cast<double>(inbox_.size()));
        }
        phase_ = Phase::Idle;
        rearmSteal();
        return;
    }
}

bool
TaskUnit::busy() const
{
    return phase_ != Phase::Idle || !inbox_.empty() || !sendQ_.empty();
}

void
TaskUnit::reportStats(StatSet& stats) const
{
    stats.set(name() + ".tasksRun", static_cast<double>(tasksRun_));
    stats.set(name() + ".busyCycles",
              static_cast<double>(busyCycles_));
    stats.set(name() + ".waitFillCycles",
              static_cast<double>(waitFillCycles_));
    stats.set(name() + ".configWaitCycles",
              static_cast<double>(configWaitCycles_));
    if (ports_.steal != StealPolicy::None) {
        stats.set(name() + ".steal.requestsSent",
                  static_cast<double>(stealReqSent_));
        stats.set(name() + ".steal.requestsReceived",
                  static_cast<double>(stealReqRecv_));
        stats.set(name() + ".steal.grantsReceived",
                  static_cast<double>(stealGrants_));
        stats.set(name() + ".steal.deniesReceived",
                  static_cast<double>(stealDenies_));
        stats.set(name() + ".steal.tasksStolenIn",
                  static_cast<double>(tasksStolenIn_));
        stats.set(name() + ".steal.tasksGivenOut",
                  static_cast<double>(tasksGivenOut_));
    }
    buckets_.report(stats, name());
}

struct TaskUnit::Snap final : ComponentSnap
{
    std::deque<DispatchMsg> inbox;
    std::deque<Packet> sendQ;
    Phase phase = Phase::Idle;
    DispatchMsg cur;
    Tick startedAt = 0;
    Tick computeUntil = 0;
    std::uint64_t builtinLinesLeft = 0;
    Addr builtinWriteCursor = 0;
    std::uint32_t builtinFwdAccum = 0;
    bool builtinFwdDoneSent = false;
    std::uint64_t spatialLinesSuppressed = 0;
    std::uint64_t spatialChunksSent = 0;
    std::uint64_t tasksRun = 0;
    std::uint64_t busyCycles = 0;
    std::uint64_t waitFillCycles = 0;
    std::uint64_t configWaitCycles = 0;
    std::uint32_t stealProbeIdx = 0;
    bool stealWaiting = false;
    bool stealExhausted = false;
    std::uint64_t stealReqSent = 0;
    std::uint64_t stealReqRecv = 0;
    std::uint64_t stealGrants = 0;
    std::uint64_t stealDenies = 0;
    std::uint64_t tasksStolenIn = 0;
    std::uint64_t tasksGivenOut = 0;
    CycleBuckets buckets;
    std::uint64_t lastFirings = 0;
    CycleClass lastClass = CycleClass::Idle;
    bool stateSpanOpen = false;
    bool builtinWriteBlocked = false;
    Tick expectedNext = 0;
    CycleClass gapClass = CycleClass::Idle;
    bool gapBusy = false;
};

std::unique_ptr<ComponentSnap>
TaskUnit::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->inbox = inbox_;
    s->sendQ = sendQ_;
    s->phase = phase_;
    s->cur = cur_;
    s->startedAt = startedAt_;
    s->computeUntil = computeUntil_;
    s->builtinLinesLeft = builtinLinesLeft_;
    s->builtinWriteCursor = builtinWriteCursor_;
    s->builtinFwdAccum = builtinFwdAccum_;
    s->builtinFwdDoneSent = builtinFwdDoneSent_;
    s->spatialLinesSuppressed = spatialLinesSuppressed_;
    s->spatialChunksSent = spatialChunksSent_;
    s->tasksRun = tasksRun_;
    s->busyCycles = busyCycles_;
    s->waitFillCycles = waitFillCycles_;
    s->configWaitCycles = configWaitCycles_;
    s->stealProbeIdx = stealProbeIdx_;
    s->stealWaiting = stealWaiting_;
    s->stealExhausted = stealExhausted_;
    s->stealReqSent = stealReqSent_;
    s->stealReqRecv = stealReqRecv_;
    s->stealGrants = stealGrants_;
    s->stealDenies = stealDenies_;
    s->tasksStolenIn = tasksStolenIn_;
    s->tasksGivenOut = tasksGivenOut_;
    s->buckets = buckets_;
    s->lastFirings = lastFirings_;
    s->lastClass = lastClass_;
    s->stateSpanOpen = stateSpanOpen_;
    s->builtinWriteBlocked = builtinWriteBlocked_;
    s->expectedNext = expectedNext_;
    s->gapClass = gapClass_;
    s->gapBusy = gapBusy_;
    return s;
}

void
TaskUnit::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    inbox_ = s.inbox;
    sendQ_ = s.sendQ;
    phase_ = s.phase;
    cur_ = s.cur;
    startedAt_ = s.startedAt;
    computeUntil_ = s.computeUntil;
    builtinLinesLeft_ = s.builtinLinesLeft;
    builtinWriteCursor_ = s.builtinWriteCursor;
    builtinFwdAccum_ = s.builtinFwdAccum;
    builtinFwdDoneSent_ = s.builtinFwdDoneSent;
    spatialLinesSuppressed_ = s.spatialLinesSuppressed;
    spatialChunksSent_ = s.spatialChunksSent;
    tasksRun_ = s.tasksRun;
    busyCycles_ = s.busyCycles;
    waitFillCycles_ = s.waitFillCycles;
    configWaitCycles_ = s.configWaitCycles;
    stealProbeIdx_ = s.stealProbeIdx;
    stealWaiting_ = s.stealWaiting;
    stealExhausted_ = s.stealExhausted;
    stealReqSent_ = s.stealReqSent;
    stealReqRecv_ = s.stealReqRecv;
    stealGrants_ = s.stealGrants;
    stealDenies_ = s.stealDenies;
    tasksStolenIn_ = s.tasksStolenIn;
    tasksGivenOut_ = s.tasksGivenOut;
    buckets_ = s.buckets;
    lastFirings_ = s.lastFirings;
    lastClass_ = s.lastClass;
    stateSpanOpen_ = s.stateSpanOpen;
    builtinWriteBlocked_ = s.builtinWriteBlocked;
    expectedNext_ = s.expectedNext;
    gapClass_ = s.gapClass;
    gapBusy_ = s.gapBusy;
}

} // namespace ts
