/**
 * @file
 * One Delta lane: a reconfigurable dataflow fabric, stream engines, a
 * scratchpad, pipe buffers, a task unit, and the NoC adapter that
 * stitches them to the mesh (memory port, pipe transmit, message
 * demultiplexing).
 */

#ifndef TS_ACCEL_LANE_HH
#define TS_ACCEL_LANE_HH

#include <map>
#include <memory>

#include "cgra/fabric.hh"
#include "mem/scratchpad.hh"
#include "noc/noc.hh"
#include "stream/read_engine.hh"
#include "stream/write_engine.hh"
#include "task/task_unit.hh"

namespace ts
{

/** Per-lane configuration. */
struct LaneConfig
{
    std::uint32_t numReadEngines = 4;
    std::uint32_t numWriteEngines = 2;
    std::uint32_t maxOutstandingLines = 16; ///< memory-port MSHRs
    StealPolicy steal = StealPolicy::None;  ///< task-unit work stealing
    FabricConfig fabric;
    ScratchpadConfig spm;
    ReadEngineCfg read;
    WriteEngineCfg write;
};

/** A lane and its NoC adapter. */
class Lane : public Ticked, public MemPortIf, public PipeTxIf
{
  public:
    /** @p laneNodes maps every lane index to its NoC node (for the
     *  steal victim probe order); empty disables stealing here. */
    Lane(Simulator& sim, Noc& noc, MemImage& img,
         const TaskTypeRegistry& registry, std::uint32_t laneIndex,
         std::uint32_t selfNode, std::uint32_t dispatcherNode,
         std::uint32_t memNode, const LaneConfig& cfg,
         const std::vector<std::uint32_t>& laneNodes = {});

    // MemPortIf
    bool requestLine(Addr lineAddr,
                     std::function<void()> onData) override;
    bool writeLine(Addr lineAddr) override;

    // PipeTxIf
    bool sendChunk(std::uint64_t dstMask, std::uint64_t pipeId,
                   const std::vector<Token>& toks) override;
    bool sendSpatial(std::uint32_t dstNode, std::uint64_t group,
                     std::uint32_t words, bool done) override;

    void tick(Tick now) override;
    bool busy() const override;
    void reportStats(StatSet& stats) const override;

    TaskUnit& taskUnit() { return *taskUnit_; }
    const TaskUnit& taskUnit() const { return *taskUnit_; }
    Fabric& fabric() { return *fabric_; }
    Scratchpad& scratchpad() { return *spm_; }
    PipeSet& pipes() { return pipes_; }
    const PipeSet& pipes() const { return pipes_; }

    // -- Spatial-mapping attribution (receiver-side accounting, so
    //    write-engine and builtin senders are covered uniformly) --

    /** The landing tracker (chunks/words received here). */
    const spatial::LandingTracker& spatialLanding() const
    {
        return spatialLanding_;
    }

    /** Σ hops × packet words over spatial chunks ejected here. */
    std::uint64_t spatialHopWords() const { return spatialHopWords_; }

    /** DRAM write-back lines this lane suppressed (write engines +
     *  builtin path). */
    std::uint64_t spatialLinesSuppressed() const;

    /** DRAM line fetches avoided by landing-zone reads here. */
    std::uint64_t spatialLandingLines() const;

    /** Spatial chunks this lane's producers sent. */
    std::uint64_t spatialChunksSent() const;

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    /** Owned sub-components (fabric, engines, spm, task unit) are
     *  registered Ticked and snapshot themselves; this snap covers
     *  only the adapter's own state.  inflight_ callbacks capture
     *  stable component pointers, and the map is empty at the
     *  quiescent points where snapshots are taken. */
    struct Snap final : ComponentSnap
    {
        PipeSet pipes;
        SharedLanding::State landing;
        spatial::LandingTracker spatialLanding;
        std::uint64_t spatialHopWords = 0;
        std::uint64_t nextTag = 1;
        std::map<std::uint64_t, std::function<void()>> inflight;
        std::uint64_t lineReads = 0;
        std::uint64_t lineWrites = 0;
        std::uint64_t chunksSent = 0;
    };

    Noc& noc_;
    std::uint32_t selfNode_;
    std::uint32_t memNode_;
    LaneConfig cfg_;

    std::unique_ptr<Fabric> fabric_;
    std::unique_ptr<Scratchpad> spm_;
    PipeSet pipes_;
    std::unique_ptr<SharedLanding> landing_;
    std::vector<std::unique_ptr<ReadEngine>> readEngines_;
    std::vector<std::unique_ptr<WriteEngine>> writeEngines_;
    std::unique_ptr<TaskUnit> taskUnit_;

    std::uint64_t nextTag_ = 1;
    std::map<std::uint64_t, std::function<void()>> inflight_;

    std::uint64_t lineReads_ = 0;
    std::uint64_t lineWrites_ = 0;
    std::uint64_t chunksSent_ = 0;

    spatial::LandingTracker spatialLanding_;
    std::uint64_t spatialHopWords_ = 0;
};

} // namespace ts

#endif // TS_ACCEL_LANE_HH
