#include "stream/pipe_set.hh"

#include "sim/logging.hh"

namespace ts
{

void
PipeSet::deliver(std::uint64_t pipeId, const std::vector<Token>& toks)
{
    Pipe& p = pipes_[pipeId];
    for (const Token& t : toks)
        p.q.push_back(t);
    p.received += toks.size();
    totalReceived_ += toks.size();
    p.maxOcc = std::max(p.maxOcc, p.q.size());
    globalMaxOcc_ = std::max(globalMaxOcc_, totalBuffered());
}

bool
PipeSet::hasData(std::uint64_t pipeId) const
{
    auto it = pipes_.find(pipeId);
    return it != pipes_.end() && !it->second.q.empty();
}

Token
PipeSet::pop(std::uint64_t pipeId)
{
    auto it = pipes_.find(pipeId);
    TS_ASSERT(it != pipes_.end() && !it->second.q.empty(),
              "pop on empty pipe ", pipeId);
    Token t = it->second.q.front();
    it->second.q.pop_front();
    return t;
}

void
PipeSet::release(std::uint64_t pipeId)
{
    auto it = pipes_.find(pipeId);
    if (it != pipes_.end()) {
        TS_ASSERT(it->second.q.empty(),
                  "releasing pipe ", pipeId, " with data buffered");
        pipes_.erase(it);
    }
}

std::size_t
PipeSet::totalBuffered() const
{
    std::size_t n = 0;
    for (const auto& [id, p] : pipes_)
        n += p.q.size();
    return n;
}

void
PipeSet::reportStats(StatSet& stats, const std::string& prefix) const
{
    stats.set(prefix + ".pipeTokens",
              static_cast<double>(totalReceived_));
    stats.set(prefix + ".pipeMaxOccupancy",
              static_cast<double>(globalMaxOcc_));
}

} // namespace ts
