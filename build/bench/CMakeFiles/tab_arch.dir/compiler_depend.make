# Empty compiler generated dependencies file for tab_arch.
# This may be replaced when dependencies are built.
