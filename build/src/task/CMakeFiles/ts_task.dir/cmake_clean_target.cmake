file(REMOVE_RECURSE
  "libts_task.a"
)
