/**
 * @file
 * Cycle-level tracing: Chrome trace-event / Perfetto-compatible
 * timeline output for the whole accelerator.
 *
 * A Tracer turns component activity into a JSON event stream that
 * loads directly into Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing.  Simulated cycles map 1:1 onto trace microseconds.
 *
 * Event model:
 *  - every component gets its own *track* (a "thread" in the trace),
 *    keyed by its diagnostic name;
 *  - duration events ("B"/"E") mark spans such as task execution or a
 *    stream in flight; spans nest on a track;
 *  - complete events ("X") mark spans whose end is known at emit time
 *    (e.g. a DRAM access of fixed service latency);
 *  - instant events ("i") mark decisions (dispatch, pipe activation,
 *    packet injection);
 *  - counter events ("C") sample numeric series (queue depths,
 *    per-lane cycle classes).
 *
 * Cost model: exactly one Tracer may be *active* per thread (the
 * active-sink pointer is thread_local, so concurrent Delta instances
 * on different threads each trace independently).  Instrumentation
 * sites guard with `if (trace::on())`, which compiles to a
 * load-and-branch when tracing is compiled in and to a constant
 * `false` (dead-code eliminating the whole site) when built with
 * -DTS_TRACE_DISABLED.  A disabled run therefore produces
 * bit-identical simulation results.
 *
 * Activation is runtime-gated and programmatic: DeltaConfig::trace
 * carries the configuration.  The TS_TRACE environment variable is
 * honored as a fallback by the options layer (src/driver/options.hh),
 * which is the only place in the tree that reads the environment.
 */

#ifndef TS_TRACE_TRACE_HH
#define TS_TRACE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ts
{

namespace trace
{

/** Tracer configuration (a member of DeltaConfig). */
struct TracerConfig
{
    bool enabled = false;
    std::string path = "ts_trace.json";
    /** Process name shown in the Perfetto UI. */
    std::string processName = "delta";
};

class Tracer;

namespace detail
{
/** The tracer receiving this thread's events, or nullptr when
 *  tracing is off on this thread. */
extern thread_local Tracer* gActive;
} // namespace detail

/** Whether any instrumentation site should emit events. */
inline bool
on()
{
#ifdef TS_TRACE_DISABLED
    return false;
#else
    return detail::gActive != nullptr;
#endif
}

/** The active tracer; only meaningful when on() is true. */
inline Tracer*
active()
{
    return detail::gActive;
}

/** Track handle; returned by Tracer::track(). */
using TrackId = std::uint32_t;

/**
 * The event sink: formats and buffers Chrome trace events and writes
 * them to a JSON file.  Events are streamed through a growable buffer
 * that is flushed to disk in large chunks, so long runs do not
 * accumulate memory proportional to event count.
 */
class Tracer
{
  public:
    explicit Tracer(TracerConfig cfg);
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    bool enabled() const { return enabled_; }
    const std::string& path() const { return cfg_.path; }

    /**
     * Make this tracer the calling thread's event sink (trace::on()
     * becomes true on this thread when it is enabled).  Passing
     * nullptr deactivates tracing on this thread.
     */
    static void setActive(Tracer* t);

    /** Advance trace time; called once per simulated cycle. */
    void setNow(Tick now) { now_ = now; }

    /** Current trace time in cycles. */
    Tick now() const { return now_; }

    /**
     * Get-or-create the track for a component name.  Tracks appear as
     * named threads; creation order fixes UI sort order.
     */
    TrackId track(const std::string& name);

    /** Begin a span on a track ("B"). @p args is a JSON object body
     *  such as `"uid":3` (may be empty). */
    void begin(TrackId tid, const char* name, std::string args = {});

    /** End the innermost open span on a track ("E"). */
    void end(TrackId tid);

    /** A span with a known duration ("X"), starting at @p start. */
    void complete(TrackId tid, Tick start, Tick dur, const char* name,
                  std::string args = {});

    /** A point event on a track ("i"). */
    void instant(TrackId tid, const char* name, std::string args = {});

    /** Sample one numeric series ("C"); series share a chart when
     *  they share @p name, distinguished by @p series. */
    void counter(const char* name, const char* series, double value);

    /** Number of events emitted so far. */
    std::uint64_t events() const { return events_; }

    /** Flush buffered events and close the JSON document.  Called by
     *  the destructor; safe to call more than once. */
    void finish();

  private:
    void emitPrefix(char ph, Tick ts, TrackId tid);
    void header();
    void maybeFlush();

    TracerConfig cfg_;
    bool enabled_ = false;
    bool finished_ = false;
    Tick now_ = 0;
    std::ofstream out_;
    std::string buf_;
    std::map<std::string, TrackId> tracks_;
    TrackId nextTrack_ = 1;
    std::uint64_t events_ = 0;
};

namespace detail
{

inline void
argsInto(std::ostringstream&)
{
}

template <typename V, typename... Rest>
void
argsInto(std::ostringstream& os, const char* key, const V& v,
         const Rest&... rest)
{
    os << '"' << key << "\":";
    if constexpr (std::is_convertible_v<V, std::string>) {
        os << '"' << v << '"';
    } else {
        os << +v; // promote char-sized integers to numbers
    }
    if constexpr (sizeof...(rest) > 0)
        os << ',';
    argsInto(os, rest...);
}

} // namespace detail

/**
 * Build a JSON object body from key/value pairs:
 *   trace::args("uid", 3, "lane", 1) -> `"uid":3,"lane":1`
 * Values may be arithmetic or string-like.  Only call under a
 * trace::on() guard; the formatting is not free.
 */
template <typename... KV>
std::string
args(const KV&... kv)
{
    std::ostringstream os;
    detail::argsInto(os, kv...);
    return os.str();
}

} // namespace trace

} // namespace ts

#endif // TS_TRACE_TRACE_HH
