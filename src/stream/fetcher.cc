#include "stream/fetcher.hh"

namespace ts
{

void
WordFetcher::pump(Tick now)
{
    if (space_ == Space::Spm) {
        TS_ASSERT(spm_ != nullptr, "Spm fetch without a scratchpad");
        std::uint32_t issued = 0;
        for (auto& slot : win_) {
            if (issued >= cfg_.issuesPerCycle)
                break;
            if (slot.st != St::NeedFetch)
                continue;
            if (!spm_->tryAccess(now))
                break;
            slot.val = spm_->read(slot.addr);
            slot.st = St::Ready;
            ++spmReads_;
            ++issued;
        }
        return;
    }

    if (landing_) {
        // Spatially forwarded range: the words already landed in the
        // lane's scratchpad landing zone, so serve them at SPM speed
        // from the functional image.  No DRAM line requests; count
        // the distinct lines a non-forwarded run would have fetched.
        std::uint32_t issued = 0;
        for (auto& slot : win_) {
            if (issued >= cfg_.issuesPerCycle)
                break;
            if (slot.st != St::NeedFetch)
                continue;
            slot.val = img_.readWord(slot.addr);
            slot.st = St::Ready;
            ++landingWords_;
            const Addr line = lineAlign(slot.addr);
            if (line != lastLandingLine_) {
                lastLandingLine_ = line;
                ++landingLines_;
            }
            ++issued;
        }
        return;
    }

    TS_ASSERT(mem_ != nullptr, "Dram fetch without a memory port");
    std::uint32_t issued = 0;
    while (issued < cfg_.issuesPerCycle &&
           outstanding_ < cfg_.maxOutstanding) {
        // Find the first word still needing a fetch.
        Addr line = 0;
        bool found = false;
        for (const auto& slot : win_) {
            if (slot.st == St::NeedFetch) {
                line = lineAlign(slot.addr);
                found = true;
                break;
            }
        }
        if (!found)
            break;

        const std::uint64_t gen = gen_;
        const bool ok = mem_->requestLine(line, [this, line, gen]() {
            if (gen != gen_)
                return; // stale response from a prior stream
            for (auto& slot : win_) {
                if (slot.st == St::Requested &&
                    lineAlign(slot.addr) == line) {
                    slot.val = img_.readWord(slot.addr);
                    slot.st = St::Ready;
                }
            }
            inflightLines_.erase(line);
            --outstanding_;
        });
        if (!ok)
            break;

        // Coalesce: every queued word on this line rides along.
        for (auto& slot : win_) {
            if (slot.st == St::NeedFetch && lineAlign(slot.addr) == line)
                slot.st = St::Requested;
        }
        inflightLines_.insert(line);
        ++outstanding_;
        ++linesRequested_;
        ++issued;
    }
}

} // namespace ts
