
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/task/dispatcher.cc" "src/task/CMakeFiles/ts_task.dir/dispatcher.cc.o" "gcc" "src/task/CMakeFiles/ts_task.dir/dispatcher.cc.o.d"
  "/root/repo/src/task/shared_landing.cc" "src/task/CMakeFiles/ts_task.dir/shared_landing.cc.o" "gcc" "src/task/CMakeFiles/ts_task.dir/shared_landing.cc.o.d"
  "/root/repo/src/task/task_graph.cc" "src/task/CMakeFiles/ts_task.dir/task_graph.cc.o" "gcc" "src/task/CMakeFiles/ts_task.dir/task_graph.cc.o.d"
  "/root/repo/src/task/task_types.cc" "src/task/CMakeFiles/ts_task.dir/task_types.cc.o" "gcc" "src/task/CMakeFiles/ts_task.dir/task_types.cc.o.d"
  "/root/repo/src/task/task_unit.cc" "src/task/CMakeFiles/ts_task.dir/task_unit.cc.o" "gcc" "src/task/CMakeFiles/ts_task.dir/task_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ts_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ts_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/cgra/CMakeFiles/ts_cgra.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ts_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
