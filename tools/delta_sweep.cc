/**
 * @file
 * delta-sweep: the single CLI entry point for running grids of
 * simulations on a host thread pool (src/driver/sweep.hh).
 *
 * A grid is the cross product workloads x configs x seeds x scales.
 * Each point runs in full isolation; results aggregate
 * deterministically (bit-identical between -j 1 and -j N).
 *
 * Usage:
 *   delta-sweep [grid options] [shared options]
 *     --configs LIST    preset configs, comma-separated (default
 *                       "static,delta"; valid: static, dyn, work,
 *                       pipe, delta)
 *     --seeds LIST      comma-separated seeds (default: --seed)
 *     --scales LIST     comma-separated scales (default: --scale)
 *     --lanes N         lanes for every config (default 8)
 *     --baseline NAME   config paired speedups compare against
 *                       (default: first config)
 *     --out PATH        write the aggregate JSON report here
 *     --grid FILE       read `key = value` grid settings (applied
 *                       where the flag appears; later flags override)
 *     --quiet           suppress per-run progress/ETA on stderr
 *   plus every shared run option (see --help): --workloads, --scale,
 *   --seed, --trace, --bench-json, --log, -j/--jobs, each with its
 *   TS_* environment fallback.
 *
 * Per-run StatSets land in --bench-json DIR as `<tag>.json` in the
 * wrapper shape `tools/delta-report --baseline` ingests.  Exit code:
 * 0 when every run completed and passed its check, 1 otherwise, 2 on
 * usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "driver/sweep.hh"
#include "sim/logging.hh"

namespace
{

using namespace ts;

/** Everything a grid can configure besides the shared options. */
struct GridSettings
{
    std::string configs;   ///< preset list ("" = static,delta)
    std::vector<std::uint64_t> seeds;
    std::vector<double> scales;
    std::uint32_t lanes = 8;
    std::string baseline;
    std::string out;
    bool quiet = false;
};

[[noreturn]] void
usage(int code)
{
    std::FILE* os = code == 0 ? stdout : stderr;
    std::fputs(
        "usage: delta-sweep [grid options] [shared options]\n"
        "grid options:\n"
        "  --configs LIST    comma-separated presets (default\n"
        "                    'static,delta'; valid: static, dyn,\n"
        "                    work, pipe, delta)\n"
        "  --seeds LIST      comma-separated seeds (default: --seed)\n"
        "  --scales LIST     comma-separated scales (default: --scale)\n"
        "  --lanes N         lanes for every config (default 8)\n"
        "  --baseline NAME   speedup baseline (default: first config)\n"
        "  --out PATH        aggregate JSON report\n"
        "  --grid FILE       `key = value` grid file\n"
        "  --quiet           no per-run progress on stderr\n",
        os);
    std::fputs(ts::driver::optionsHelp(), os);
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    std::string cur;
    const auto flush = [&] {
        const auto b = cur.find_first_not_of(" \t");
        const auto e = cur.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(cur.substr(b, e - b + 1));
        cur.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            cur += c;
    }
    flush();
    return out;
}

std::vector<std::uint64_t>
parseSeedList(const std::string& list)
{
    std::vector<std::uint64_t> out;
    for (const std::string& s : splitList(list)) {
        char* end = nullptr;
        const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0')
            fatal("--seeds entries must be non-negative integers, "
                  "got '", s, "'");
        out.push_back(v);
    }
    if (out.empty())
        fatal("--seeds needs at least one entry");
    return out;
}

std::vector<double>
parseScaleList(const std::string& list)
{
    std::vector<double> out;
    for (const std::string& s : splitList(list)) {
        char* end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0' || !(v > 0))
            fatal("--scales entries must be positive numbers, got '",
                  s, "'");
        out.push_back(v);
    }
    if (out.empty())
        fatal("--scales needs at least one entry");
    return out;
}

std::uint32_t
parseLanes(const std::string& s)
{
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 1 || v > 62)
        fatal("--lanes must be in 1..62, got '", s, "'");
    return static_cast<std::uint32_t>(v);
}

/**
 * Apply one `key = value` grid-file setting.  Shared keys write into
 * @p opt, grid keys into @p grid; an unknown key is fatal listing
 * every valid one.
 */
void
applyGridKey(const std::string& key, const std::string& value,
             driver::RunOptions& opt, GridSettings& grid)
{
    if (key == "workloads") {
        opt.workloads = workloadsFromList(value);
    } else if (key == "configs") {
        grid.configs = value;
        (void)driver::sweepConfigsFromList(value); // validate now
    } else if (key == "seeds") {
        grid.seeds = parseSeedList(value);
    } else if (key == "scales") {
        grid.scales = parseScaleList(value);
    } else if (key == "lanes") {
        grid.lanes = parseLanes(value);
    } else if (key == "baseline") {
        grid.baseline = value;
    } else if (key == "jobs") {
        char* end = nullptr;
        const long v = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || v < 1)
            fatal("grid key 'jobs' must be a positive integer, "
                  "got '", value, "'");
        opt.jobs = static_cast<unsigned>(v);
    } else if (key == "out") {
        grid.out = value;
    } else if (key == "bench-json") {
        opt.benchJsonDir = value;
    } else if (key == "trace") {
        opt.tracePath = value;
    } else if (key == "no-fast-forward") {
        opt.noFastForward = value != "0";
    } else {
        fatal("unknown grid key '", key,
              "'; valid keys: workloads, configs, seeds, scales, "
              "lanes, baseline, jobs, out, bench-json, trace, "
              "no-fast-forward");
    }
}

/** Read a `key = value` grid file ('#' comments, blank lines ok). */
void
loadGridFile(const std::string& path, driver::RunOptions& opt,
             GridSettings& grid)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open grid file '", path, "'");
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("grid file ", path, ":", lineno,
                  ": expected `key = value`, got '", line, "'");
        const auto trim = [](std::string s) {
            const auto tb = s.find_first_not_of(" \t\r");
            const auto te = s.find_last_not_of(" \t\r");
            return tb == std::string::npos
                       ? std::string()
                       : s.substr(tb, te - tb + 1);
        };
        applyGridKey(trim(line.substr(0, eq)),
                     trim(line.substr(eq + 1)), opt, grid);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ts;

    try {
        // Shared flags first (consumed from argv, TS_* fallbacks
        // applied); the remainder must all be grid options.
        driver::RunOptions opt =
            driver::parseCommandLine(argc, argv, /*strict=*/false);
        GridSettings grid;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("option '", arg, "' requires a value");
                return argv[++i];
            };
            if (arg == "--configs") {
                grid.configs = value();
                (void)driver::sweepConfigsFromList(grid.configs);
            } else if (arg == "--seeds") {
                grid.seeds = parseSeedList(value());
            } else if (arg == "--scales") {
                grid.scales = parseScaleList(value());
            } else if (arg == "--lanes") {
                grid.lanes = parseLanes(value());
            } else if (arg == "--baseline") {
                grid.baseline = value();
            } else if (arg == "--out") {
                grid.out = value();
            } else if (arg == "--grid") {
                loadGridFile(value(), opt, grid);
            } else if (arg == "--quiet") {
                grid.quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else {
                std::cerr << "delta-sweep: unknown option '" << arg
                          << "'\n\n";
                usage(2);
            }
        }

        driver::SweepSpec spec;
        spec.workloads = opt.workloads;
        spec.configs =
            driver::sweepConfigsFromList(grid.configs, grid.lanes);
        if (!grid.seeds.empty())
            spec.seeds = grid.seeds;
        else
            spec.seeds = {opt.seed};
        if (!grid.scales.empty())
            spec.scales = grid.scales;
        else
            spec.scales = {opt.scale};
        spec.baseline = grid.baseline;
        spec.jobs = opt.jobs;
        spec.benchJsonDir = opt.benchJsonDir;
        spec.tracePath = opt.tracePath;
        spec.noFastForward = opt.noFastForward;
        spec.progress = !grid.quiet;

        const std::size_t nw = spec.workloads.size();
        const std::size_t nc = spec.configs.size();
        const std::size_t ns = spec.seeds.size();
        const std::size_t nx = spec.scales.size();
        driver::Sweep sweep(std::move(spec));
        if (opt.jobs > 0)
            std::fprintf(stderr,
                         "delta-sweep: %zu runs (%zu workloads x %zu "
                         "configs x %zu seeds x %zu scales), -j %u\n",
                         sweep.points().size(), nw, nc, ns, nx,
                         opt.jobs);
        else
            std::fprintf(stderr,
                         "delta-sweep: %zu runs (%zu workloads x %zu "
                         "configs x %zu seeds x %zu scales), -j auto\n",
                         sweep.points().size(), nw, nc, ns, nx);
        const driver::SweepReport report = sweep.run();

        if (!grid.out.empty()) {
            std::ofstream os(grid.out);
            if (!os)
                fatal("cannot write report '", grid.out, "'");
            report.writeJson(os);
            std::fprintf(stderr, "delta-sweep: report written to %s\n",
                         grid.out.c_str());
        } else {
            report.writeJson(std::cout);
        }

        const std::size_t bad = report.failures();
        if (bad > 0) {
            std::fprintf(stderr,
                         "delta-sweep: %zu of %zu runs failed:\n",
                         bad, report.runs.size());
            for (const driver::RunOutcome& r : report.runs) {
                if (!r.ok())
                    std::fprintf(
                        stderr, "  %-32s %s\n",
                        r.point.tag().c_str(),
                        r.failed ? r.error.c_str() : "check failed");
            }
            return 1;
        }
        return 0;
    } catch (const FatalError& e) {
        std::cerr << "delta-sweep: " << e.what() << "\n";
        return 2;
    }
}
