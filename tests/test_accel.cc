/**
 * @file
 * Accelerator-level tests: determinism, configuration validation,
 * statistics contracts, the area model, and a property sweep showing
 * functional correctness is independent of the hardware configuration
 * (lanes, queue depths, policies, feature flags).
 */

#include <gtest/gtest.h>

#include "accel/area_model.hh"
#include "accel/energy_model.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{
namespace
{

double
runSpmvCycles(const DeltaConfig& cfg, std::uint64_t seed = 7)
{
    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = seed;
    auto wl = makeWorkload(Wk::Spmv, sp);
    Delta delta(cfg);
    TaskGraph g;
    wl->build(delta, g);
    const StatSet stats = delta.run(g);
    EXPECT_TRUE(wl->check(delta.image()));
    return stats.get("delta.cycles");
}

TEST(Delta, DeterministicCycleCounts)
{
    const double a = runSpmvCycles(DeltaConfig::delta(4));
    const double b = runSpmvCycles(DeltaConfig::delta(4));
    EXPECT_EQ(a, b) << "same seed and config must be cycle-identical";
}

TEST(Delta, DifferentSeedsChangeTheWorkload)
{
    const double a = runSpmvCycles(DeltaConfig::delta(4), 7);
    const double b = runSpmvCycles(DeltaConfig::delta(4), 8);
    EXPECT_NE(a, b);
}

TEST(Delta, RejectsBadLaneCounts)
{
    EXPECT_THROW(Delta(DeltaConfig::delta(0)), FatalError);
    EXPECT_THROW(Delta(DeltaConfig::delta(63)), FatalError);
}

TEST(Delta, OneRunPerInstance)
{
    Delta delta(DeltaConfig::delta(2));
    auto dfg = std::make_unique<Dfg>("id");
    const auto x = dfg->addInput();
    dfg->addOutput(dfg->add(Op::Add, Operand::ref(x),
                            Operand::immI(0)));
    const auto ty = delta.registry().addDfgType("id", std::move(dfg));
    MemImage& img = delta.image();
    TaskGraph g;
    WriteDesc out;
    out.base = img.allocWords(8);
    g.addTask(ty, {StreamDesc::linear(Space::Dram, img.allocWords(8),
                                      8)},
              {out});
    delta.run(g);
    EXPECT_THROW(delta.run(g), PanicError);
}

TEST(Delta, StatsContractHoldsAfterRun)
{
    SuiteParams sp;
    sp.scale = 0.25;
    auto wl = makeWorkload(Wk::Join, sp);
    Delta delta(DeltaConfig::delta(4));
    TaskGraph g;
    wl->build(delta, g);
    const StatSet stats = delta.run(g);
    for (const char* key :
         {"delta.cycles", "delta.busyMax", "delta.busyMean",
          "delta.imbalance", "mem.linesRead", "mem.linesWritten",
          "noc.wordHops", "noc.delivered", "sim.cycles",
          "dispatcher.tasksCompleted"}) {
        EXPECT_TRUE(stats.has(key)) << key;
    }
    EXPECT_GE(stats.get("delta.imbalance"), 1.0);
    EXPECT_GE(stats.get("delta.busyMax"),
              stats.get("delta.busyMean"));
    EXPECT_EQ(stats.get("sim.cycles"), stats.get("delta.cycles"));
}

TEST(Delta, DeadlineFatalsWithDiagnosis)
{
    SuiteParams sp;
    sp.scale = 0.5;
    auto wl = makeWorkload(Wk::Msort, sp);
    DeltaConfig cfg = DeltaConfig::delta(2);
    cfg.maxCycles = 50; // far too tight
    Delta delta(cfg);
    TaskGraph g;
    wl->build(delta, g);
    EXPECT_THROW(delta.run(g), FatalError);
}

TEST(AreaModel, AdditionsAreSmallSingleDigitPercent)
{
    const AreaReport rep = computeArea(DeltaConfig::delta(8));
    EXPECT_GT(rep.total(), 0.0);
    EXPECT_GT(rep.additions(), 0.0);
    EXPECT_LT(rep.overheadPercent(), 10.0)
        << "TaskStream structures must be a small fraction";
    EXPECT_GT(rep.overheadPercent(), 0.5)
        << "the additions are real hardware, not free";
}

TEST(AreaModel, AdditionsScaleWithLanes)
{
    const AreaReport r8 = computeArea(DeltaConfig::delta(8));
    const AreaReport r16 = computeArea(DeltaConfig::delta(16));
    EXPECT_GT(r16.total(), r8.total());
    EXPECT_GT(r16.additions(), r8.additions());
    // Overhead ratio stays in the same ballpark.
    EXPECT_NEAR(r16.overheadPercent(), r8.overheadPercent(), 3.0);
}

TEST(EnergyModel, BreaksDownARunAndIsPositive)
{
    SuiteParams sp;
    sp.scale = 0.25;
    auto wl = makeWorkload(Wk::Spmv, sp);
    Delta delta(DeltaConfig::delta(4));
    TaskGraph g;
    wl->build(delta, g);
    const StatSet stats = delta.run(g);
    const EnergyReport rep = computeEnergy(stats, 4);
    ASSERT_FALSE(rep.entries.empty());
    EXPECT_GT(rep.totalNanojoules(), 0.0);
    for (const auto& e : rep.entries)
        EXPECT_GE(e.nanojoules, 0.0) << e.name;
    // DRAM should dominate a memory-bound run.
    double dram = 0;
    for (const auto& e : rep.entries) {
        if (e.name.find("DRAM") != std::string::npos)
            dram = e.nanojoules;
    }
    EXPECT_GT(dram, 0.2 * rep.totalNanojoules());
}

TEST(EnergyModel, MulticastReducesModeledEnergy)
{
    double nj[2];
    int i = 0;
    for (const bool mcast : {false, true}) {
        SuiteParams sp;
        sp.scale = 0.5;
        auto wl = makeWorkload(Wk::Centroid, sp);
        DeltaConfig cfg = DeltaConfig::delta(4);
        cfg.enableMulticast = mcast;
        Delta delta(cfg);
        TaskGraph g;
        wl->build(delta, g);
        const StatSet stats = delta.run(g);
        EXPECT_TRUE(wl->check(delta.image()));
        nj[i++] = computeEnergy(stats, 4).totalNanojoules();
    }
    EXPECT_LT(nj[1], nj[0]);
}

TEST(Workloads, FactoryCoversTheWholeSuite)
{
    SuiteParams sp;
    for (const Wk w : allWorkloads()) {
        auto wl = makeWorkload(w, sp);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), wkName(w));
    }
    EXPECT_EQ(allWorkloads().size(), 8u);
}

/** Random-hardware-configuration property sweep: functional results
 *  never depend on the configuration. */
class RandomConfig : public ::testing::TestWithParam<int>
{};

TEST_P(RandomConfig, CorrectnessIsConfigIndependent)
{
    Rng rng(31000 + GetParam());
    DeltaConfig cfg = DeltaConfig::delta(
        static_cast<std::uint32_t>(rng.uniformInt(1, 12)));
    cfg.policy = static_cast<SchedPolicy>(rng.uniformInt(0, 2));
    cfg.enablePipeline = rng.uniform01() < 0.5;
    cfg.enableMulticast = rng.uniform01() < 0.5;
    cfg.bulkSynchronous = rng.uniform01() < 0.3;
    cfg.laneQueueCap =
        static_cast<std::uint32_t>(rng.uniformInt(1, 6));
    cfg.mem.serviceLatency =
        static_cast<Tick>(rng.uniformInt(10, 80));
    cfg.mem.issueWidth =
        static_cast<std::uint32_t>(rng.uniformInt(1, 4));
    cfg.nocLinks.linkWords =
        static_cast<std::uint32_t>(rng.uniformInt(1, 4));

    const Wk w =
        allWorkloads()[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<int>(allWorkloads().size()) - 1))];
    SuiteParams sp;
    sp.scale = 0.25;
    auto wl = makeWorkload(w, sp);
    Delta delta(cfg);
    TaskGraph g;
    wl->build(delta, g);
    delta.run(g);
    EXPECT_TRUE(wl->check(delta.image()))
        << wl->name() << " lanes=" << cfg.lanes << " policy="
        << schedPolicyName(cfg.policy) << " pipe="
        << cfg.enablePipeline << " mcast=" << cfg.enableMulticast
        << " bulk=" << cfg.bulkSynchronous
        << " cap=" << cfg.laneQueueCap;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomConfig,
                         ::testing::Range(0, 24));

} // namespace
} // namespace ts
