/**
 * @file
 * Host-throughput benchmark for the activity-driven simulation core:
 * how many simulated cycles per wall-clock second the simulator
 * sustains, with fast-forwarding on (`ff:1`) versus the naive
 * tick-everything reference mode (`ff:0`).
 *
 * Four benches, two synthetic and two real:
 *  - SyntheticIdle   a pacemaker taking long timed naps among a
 *                    crowd of sleeping components — the idle-heavy
 *                    extreme where sleep/wake and idle fast-forward
 *                    dominate (this is where the >= 2x floor lives);
 *  - SyntheticBusy   every component busy every cycle — the
 *                    worst case for the active-list machinery, run
 *                    to bound its overhead;
 *  - SpmvStatic      real workload, static-parallel class (bulk-
 *                    synchronous barriers leave lanes idling);
 *  - MsortDelta      real workload, TaskStream class (pipelined
 *                    dependences keep more of the machine awake).
 *
 * A second family measures the sharded conservative-PDES core
 * (`sh:1` vs `sh:4`):
 *  - ShardedBusy     a partitioned always-busy crowd — the
 *                    embarrassingly parallel extreme that bounds the
 *                    per-cycle barrier overhead (the >= 2.5x floor
 *                    at 4 shards lives here);
 *  - ShardedSpmvStatic / ShardedMsortDelta
 *                    the same real workloads through DeltaConfig::
 *                    shards, one per execution-model class (the
 *                    >= 1.5x geomean floor).
 *
 * Every bench reports `sim_cycles_per_sec` (simulated cycles per
 * wall-clock second of Simulator::run) and `sim_cycles`.  CI runs
 * this with --benchmark_format=json and gates the ff:1 / ff:0 and
 * sh:4 / sh:1 speedups against the host-* floors in
 * ci/perf-floors.txt (the shard floors are skipped on runners with
 * fewer than 4 CPUs — there is nothing to parallelize onto).
 *
 * Shared run options (--scale, --seed, --workloads, ...) are parsed
 * first; the rest of argv goes to google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

// ---------------------------------------------------------------------
// Synthetic components.
// ---------------------------------------------------------------------

/** Does nothing, forever: pure sleep/wake bookkeeping weight. */
class Sleeper : public Ticked
{
  public:
    Sleeper() : Ticked("sleeper") {}
    void tick(Tick) override { sleepOnWake(); }
    bool busy() const override { return false; }
};

/** Wakes every @p period cycles, @p naps times, then finishes. */
class Pacemaker : public Ticked
{
  public:
    Pacemaker(Tick period, std::uint64_t naps)
        : Ticked("pacemaker"), period_(period), left_(naps)
    {
    }

    void
    tick(Tick now) override
    {
        if (left_ > 0) {
            --left_;
            sleepUntil(now + period_);
        }
    }

    bool busy() const override { return left_ > 0; }

  private:
    Tick period_;
    std::uint64_t left_;
};

/** Busy every cycle until its countdown runs out. */
class Grinder : public Ticked
{
  public:
    explicit Grinder(std::uint64_t n) : Ticked("grinder"), left_(n) {}

    void
    tick(Tick) override
    {
        if (left_ > 0)
            --left_;
    }

    bool busy() const override { return left_ > 0; }

  private:
    std::uint64_t left_;
};

constexpr std::size_t kComponents = 128;

void
BM_SyntheticIdle(benchmark::State& state)
{
    const bool ff = state.range(0) != 0;
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim;
        sim.setFastForward(ff);
        Pacemaker pace(/*period=*/500, /*naps=*/200);
        std::vector<std::unique_ptr<Sleeper>> crowd;
        sim.add(&pace);
        for (std::size_t i = 0; i < kComponents; ++i) {
            crowd.push_back(std::make_unique<Sleeper>());
            sim.add(crowd.back().get());
        }
        state.ResumeTiming();
        simCycles += sim.run(1'000'000);
    }
    state.counters["sim_cycles"] = static_cast<double>(simCycles);
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(simCycles), benchmark::Counter::kIsRate);
}

void
BM_SyntheticBusy(benchmark::State& state)
{
    const bool ff = state.range(0) != 0;
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim;
        sim.setFastForward(ff);
        std::vector<std::unique_ptr<Grinder>> crowd;
        for (std::size_t i = 0; i < kComponents; ++i) {
            crowd.push_back(std::make_unique<Grinder>(50'000));
            sim.add(crowd.back().get());
        }
        state.ResumeTiming();
        simCycles += sim.run(1'000'000);
    }
    state.counters["sim_cycles"] = static_cast<double>(simCycles);
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(simCycles), benchmark::Counter::kIsRate);
}

void
BM_ShardedBusy(benchmark::State& state)
{
    const auto shards = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim;
        std::vector<std::unique_ptr<Grinder>> crowd;
        for (std::size_t i = 0; i < kComponents; ++i) {
            // One partition per component: the partition map is
            // identical for every shard count (only the executor
            // count varies), exactly like the mesh-node map in Delta.
            sim.setPartition(static_cast<std::uint32_t>(i));
            crowd.push_back(std::make_unique<Grinder>(50'000));
            sim.add(crowd.back().get());
        }
        sim.setShards(shards);
        state.ResumeTiming();
        simCycles += sim.run(1'000'000);
    }
    state.counters["sim_cycles"] = static_cast<double>(simCycles);
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(simCycles), benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------
// Real workloads (one per execution-model class).
// ---------------------------------------------------------------------

void
runWorkload(benchmark::State& state, Wk wk, DeltaConfig cfg)
{
    const bool ff = state.range(0) != 0;
    cfg.noFastForward = !ff;
    double simCycles = 0;
    double wallNs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto wl = makeWorkload(wk, suiteParams());
        Delta delta(cfg);
        TaskGraph graph;
        wl->build(delta, graph);
        state.ResumeTiming();
        const StatSet stats = delta.run(graph);
        simCycles += stats.get("sim.cycles");
        wallNs += stats.get("sim.host.wallNs");
    }
    state.counters["sim_cycles"] = simCycles;
    // Rate over the simulator's own wall-clock counter, so graph
    // building and checking never dilute the measurement.
    state.counters["sim_cycles_per_sec"] =
        wallNs > 0 ? simCycles / (wallNs / 1e9) : 0.0;
}

void
BM_SpmvStatic(benchmark::State& state)
{
    runWorkload(state, Wk::Spmv, DeltaConfig::staticBaseline());
}

void
BM_MsortDelta(benchmark::State& state)
{
    runWorkload(state, Wk::Msort, DeltaConfig::delta());
}

/** Same harness, sweeping the executor shard count instead of the
 *  execution mode (results are bit-identical by contract; only the
 *  host rate may move). */
void
runWorkloadSharded(benchmark::State& state, Wk wk, DeltaConfig cfg)
{
    cfg.shards = static_cast<std::uint32_t>(state.range(0));
    double simCycles = 0;
    double wallNs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto wl = makeWorkload(wk, suiteParams());
        Delta delta(cfg);
        TaskGraph graph;
        wl->build(delta, graph);
        state.ResumeTiming();
        const StatSet stats = delta.run(graph);
        simCycles += stats.get("sim.cycles");
        wallNs += stats.get("sim.host.wallNs");
    }
    state.counters["sim_cycles"] = simCycles;
    state.counters["sim_cycles_per_sec"] =
        wallNs > 0 ? simCycles / (wallNs / 1e9) : 0.0;
}

void
BM_ShardedSpmvStatic(benchmark::State& state)
{
    runWorkloadSharded(state, Wk::Spmv, DeltaConfig::staticBaseline());
}

void
BM_ShardedMsortDelta(benchmark::State& state)
{
    runWorkloadSharded(state, Wk::Msort, DeltaConfig::delta());
}

BENCHMARK(BM_SyntheticIdle)
    ->ArgName("ff")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SyntheticBusy)
    ->ArgName("ff")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpmvStatic)
    ->ArgName("ff")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MsortDelta)
    ->ArgName("ff")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedBusy)
    ->ArgName("sh")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedSpmvStatic)
    ->ArgName("sh")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedMsortDelta)
    ->ArgName("sh")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    ts::bench::init(&argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
