file(REMOVE_RECURSE
  "CMakeFiles/fig_scalability.dir/fig_scalability.cc.o"
  "CMakeFiles/fig_scalability.dir/fig_scalability.cc.o.d"
  "fig_scalability"
  "fig_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
