#include "workloads/spmv.hh"

#include <cmath>

namespace ts
{

void
SpmvWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);

    // --- generate the CSR matrix --------------------------------------
    std::vector<std::uint64_t> rowLen(p_.rows);
    nnz_ = 0;
    for (auto& len : rowLen) {
        if (rng.uniform01() < p_.heavyRowFraction)
            len = static_cast<std::uint64_t>(
                rng.uniformInt(64, 160));
        else
            len = static_cast<std::uint64_t>(rng.uniformInt(2, 8));
        nnz_ += len;
    }

    const Addr ptr = img.allocWords(p_.rows + 1);
    const Addr col = img.allocWords(nnz_);
    const Addr val = img.allocWords(nnz_);
    const Addr x = img.allocWords(p_.cols);
    yAddr_ = img.allocWords(p_.rows);

    std::uint64_t off = 0;
    for (std::uint64_t r = 0; r < p_.rows; ++r) {
        img.writeInt(ptr + r * wordBytes,
                     static_cast<std::int64_t>(off));
        for (std::uint64_t j = 0; j < rowLen[r]; ++j) {
            img.writeInt(col + (off + j) * wordBytes,
                         rng.uniformInt(
                             0, static_cast<std::int64_t>(p_.cols) - 1));
            img.writeDouble(val + (off + j) * wordBytes,
                            rng.uniformReal(-1.0, 1.0));
        }
        off += rowLen[r];
    }
    img.writeInt(ptr + p_.rows * wordBytes,
                 static_cast<std::int64_t>(off));
    for (std::uint64_t c = 0; c < p_.cols; ++c)
        img.writeDouble(x + c * wordBytes, rng.uniformReal(0.0, 1.0));

    // --- golden reference ---------------------------------------------
    expected_.assign(p_.rows, 0.0);
    off = 0;
    for (std::uint64_t r = 0; r < p_.rows; ++r) {
        double acc = 0.0;
        for (std::uint64_t j = 0; j < rowLen[r]; ++j) {
            const auto c = static_cast<std::uint64_t>(
                img.readInt(col + (off + j) * wordBytes));
            acc += img.readDouble(val + (off + j) * wordBytes) *
                   img.readDouble(x + c * wordBytes);
        }
        expected_[r] = acc;
        off += rowLen[r];
    }

    // --- task type ------------------------------------------------------
    auto dfg = std::make_unique<Dfg>("spmv");
    const auto vIn = dfg->addInput();
    const auto xIn = dfg->addInput();
    const auto prod =
        dfg->add(Op::FMul, Operand::ref(vIn), Operand::ref(xIn));
    const auto sum = dfg->add(Op::FAccAdd, Operand::ref(prod));
    dfg->addOutput(sum);
    const TaskTypeId spmv =
        delta.registry().addDfgType("spmv", std::move(dfg));

    // --- task graph -----------------------------------------------------
    const std::uint32_t group = graph.addSharedGroup(x, p_.cols);
    for (std::uint64_t r0 = 0; r0 < p_.rows; r0 += p_.rowsPerTask) {
        const std::uint64_t nr =
            std::min(p_.rowsPerTask, p_.rows - r0);
        WriteDesc out;
        out.base = yAddr_ + r0 * wordBytes;
        const TaskId id = graph.addTask(
            spmv,
            {StreamDesc::csr(Space::Dram, ptr + r0 * wordBytes, nr,
                             val),
             StreamDesc::csrGather(Space::Dram, ptr + r0 * wordBytes,
                                   col, nr, Space::Dram, x)},
            {out});
        graph.setSharedInput(id, 1, group);
    }
}

bool
SpmvWorkload::check(const MemImage& img) const
{
    for (std::uint64_t r = 0; r < p_.rows; ++r) {
        const double got = img.readDouble(yAddr_ + r * wordBytes);
        const double want = expected_[r];
        if (std::abs(got - want) >
            1e-9 * std::max(1.0, std::abs(want))) {
            warn("spmv mismatch at row ", r, ": got ", got, " want ",
                 want);
            return false;
        }
    }
    return true;
}

} // namespace ts
