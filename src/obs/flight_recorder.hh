/**
 * @file
 * A fixed-size ring of recent simulation scheduling events — sleeps,
 * wakes, channel commits, event fires — kept for post-mortem
 * diagnosis.  When a run deadlocks, Simulator::deadlockFatal dumps
 * the ring oldest-first so the missed-wake investigation starts from
 * the actual last-K history instead of just the stuck cycle.
 *
 * Recording is opt-in (DeltaConfig::flightRecorder, default off) and
 * the hooks sit behind null-pointer checks off the hot paths: an
 * un-attached recorder costs one predictable branch per sleep/commit
 * and nothing at all on the repeated-wake fast path.
 *
 * Header-only and dependency-light on purpose: the hooks live inside
 * ts_sim (simulator.cc, event_queue.cc), so this header must not pull
 * in simulator.hh.  Names are passed as `const std::string*` —
 * component and channel names outlive the simulation, so the ring
 * stores pointers, never copies.
 */

#ifndef TS_OBS_FLIGHT_RECORDER_HH
#define TS_OBS_FLIGHT_RECORDER_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ts::obs
{

class FlightRecorder
{
  public:
    enum class Kind : unsigned char
    {
        Sleep,  ///< component left the active list (aux = wake tick)
        Wake,   ///< sleeping component re-entered the active list
        Commit, ///< dirty channel committed (aux = visible entries)
        Event,  ///< strong event fired (name = owner, may be null)
    };

    /** @p capacity is the ring size in records (>= 1). */
    explicit FlightRecorder(std::size_t capacity)
        : ring_(capacity > 0 ? capacity : 1)
    {
    }

    /** Append one record, evicting the oldest when full. */
    void
    record(Tick at, Kind kind, const std::string* name, Tick aux = 0)
    {
        Rec& r = ring_[head_];
        r.at = at;
        r.kind = kind;
        r.name = name;
        r.aux = aux;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (count_ < ring_.size())
            ++count_;
    }

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Write the ring oldest-first, one record per line. */
    void
    dump(std::ostream& os) const
    {
        std::size_t idx =
            count_ < ring_.size() ? 0 : head_; // oldest record
        for (std::size_t i = 0; i < count_; ++i) {
            const Rec& r = ring_[idx];
            os << "  [@" << r.at << "] " << kindName(r.kind);
            if (r.name != nullptr)
                os << ' ' << *r.name;
            switch (r.kind) {
            case Kind::Sleep:
                if (r.aux == kNoAux)
                    os << " (until wake)";
                else
                    os << " (until @" << r.aux << ")";
                break;
            case Kind::Commit:
                os << " (" << r.aux << " visible)";
                break;
            case Kind::Wake:
            case Kind::Event:
                break;
            }
            os << '\n';
            idx = idx + 1 == ring_.size() ? 0 : idx + 1;
        }
    }

    /** Sentinel aux for a Sleep with no timed wake. */
    static constexpr Tick kNoAux = ~Tick{0};

  private:
    struct Rec
    {
        Tick at = 0;
        Tick aux = 0;
        const std::string* name = nullptr;
        Kind kind = Kind::Event;
    };

    static const char*
    kindName(Kind k)
    {
        switch (k) {
        case Kind::Sleep:
            return "sleep ";
        case Kind::Wake:
            return "wake  ";
        case Kind::Commit:
            return "commit";
        case Kind::Event:
            return "event ";
        }
        return "?";
    }

    std::vector<Rec> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace ts::obs

#endif // TS_OBS_FLIGHT_RECORDER_HH
