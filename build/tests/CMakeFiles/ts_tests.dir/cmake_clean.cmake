file(REMOVE_RECURSE
  "CMakeFiles/ts_tests.dir/test_accel.cc.o"
  "CMakeFiles/ts_tests.dir/test_accel.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_cgra.cc.o"
  "CMakeFiles/ts_tests.dir/test_cgra.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_errors.cc.o"
  "CMakeFiles/ts_tests.dir/test_errors.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_mem.cc.o"
  "CMakeFiles/ts_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_noc.cc.o"
  "CMakeFiles/ts_tests.dir/test_noc.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_sim.cc.o"
  "CMakeFiles/ts_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_smoke.cc.o"
  "CMakeFiles/ts_tests.dir/test_smoke.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_stream.cc.o"
  "CMakeFiles/ts_tests.dir/test_stream.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_task.cc.o"
  "CMakeFiles/ts_tests.dir/test_task.cc.o.d"
  "CMakeFiles/ts_tests.dir/test_workloads.cc.o"
  "CMakeFiles/ts_tests.dir/test_workloads.cc.o.d"
  "ts_tests"
  "ts_tests.pdb"
  "ts_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
