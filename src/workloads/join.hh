/**
 * @file
 * Broadcast sorted semi-join: a large fact relation R, partitioned
 * with Zipf-skewed partition sizes, is matched against a small sorted
 * dimension relation S.  Each task counts |R_p intersect S| with the
 * fabric's sorted-intersection unit; a final reduction task sums the
 * per-partition counts.
 *
 * Structure exercised: heavy load imbalance (Zipf partitions), shared
 * reads (every probe task streams all of S), and a reduction
 * dependence.
 */

#ifndef TS_WORKLOADS_JOIN_HH
#define TS_WORKLOADS_JOIN_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** Join workload parameters. */
struct JoinParams
{
    std::uint64_t partitions = 32;
    std::uint64_t rTotal = 6144;   ///< total R keys (Zipf across parts)
    std::uint64_t sSize = 512;     ///< dimension table keys
    std::uint64_t keySpace = 1u << 20;
    double zipfSkew = 1.1;
    std::uint64_t seed = 7;
};

/** Broadcast sorted semi-join count. */
class JoinWorkload : public Workload
{
  public:
    explicit JoinWorkload(const JoinParams& p) : p_(p) {}

    std::string name() const override { return "join"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

    std::int64_t expectedMatches() const { return expected_; }

  private:
    JoinParams p_;
    Addr totalAddr_ = 0;
    std::int64_t expected_ = 0;
};

} // namespace ts

#endif // TS_WORKLOADS_JOIN_HH
