#include "task/task_graph.hh"

#include "sim/logging.hh"

namespace ts
{

TaskId
TaskGraph::addTask(TaskTypeId type, std::vector<StreamDesc> inputs,
                   std::vector<WriteDesc> outputs)
{
    TaskInstance inst;
    inst.uid = static_cast<TaskId>(tasks_.size());
    inst.type = type;
    inst.inputs = std::move(inputs);
    inst.outputs = std::move(outputs);
    inst.inputGroup.assign(inst.inputs.size(), kNoGroup);
    tasks_.push_back(std::move(inst));
    return tasks_.back().uid;
}

void
TaskGraph::addBarrier(TaskId producer, TaskId consumer)
{
    TS_ASSERT(producer < consumer,
              "dependences must follow task creation order (",
              producer, " -> ", consumer, ")");
    TS_ASSERT(consumer < tasks_.size());
    edges_.push_back(DepEdge{producer, consumer, DepKind::Barrier, 0, 0});
}

void
TaskGraph::addPipeline(TaskId producer, std::uint8_t producerPort,
                       TaskId consumer, std::uint8_t consumerPort)
{
    TS_ASSERT(producer < consumer,
              "dependences must follow task creation order (",
              producer, " -> ", consumer, ")");
    TS_ASSERT(consumer < tasks_.size());
    TS_ASSERT(producerPort < tasks_[producer].outputs.size());
    TS_ASSERT(consumerPort < tasks_[consumer].inputs.size());
    edges_.push_back(DepEdge{producer, consumer, DepKind::Pipeline,
                             producerPort, consumerPort});
}

std::uint32_t
TaskGraph::addSharedGroup(Addr rangeBase, std::uint64_t words)
{
    TS_ASSERT(rangeBase % wordBytes == 0,
              "shared ranges must be word-aligned");
    TS_ASSERT(words > 0);
    SharedGroup g;
    g.id = static_cast<std::uint32_t>(groups_.size());
    g.rangeBase = rangeBase;
    g.words = words;
    groups_.push_back(g);
    return groups_.back().id;
}

void
TaskGraph::setSharedInput(TaskId task, std::uint32_t port,
                          std::uint32_t group)
{
    TS_ASSERT(task < tasks_.size());
    TS_ASSERT(group < groups_.size());
    TaskInstance& inst = tasks_[task];
    TS_ASSERT(port < inst.inputs.size());
    const SharedGroup& g = groups_[group];
    const StreamDesc& d = inst.inputs[port];
    TS_ASSERT(d.dataSpace == Space::Dram,
              "shared inputs must start as DRAM streams");
    TS_ASSERT(d.dataBase >= g.rangeBase &&
                  d.dataBase < g.rangeBase + g.words * wordBytes,
              "shared input base outside the group range");
    inst.inputGroup[port] = group;
    groups_[group].members.push_back(task);
}

void
TaskGraph::validate() const
{
    for (const DepEdge& e : edges_) {
        TS_ASSERT(e.producer < tasks_.size() &&
                  e.consumer < tasks_.size());
        TS_ASSERT(e.producer < e.consumer);
    }
    for (const SharedGroup& g : groups_)
        TS_ASSERT(!g.members.empty(), "shared group with no members");
}

CritPathResult
TaskGraph::criticalPath(const std::vector<TaskSpan>& spans) const
{
    CritPathResult r;
    if (tasks_.empty())
        return r;

    // Service time per task (zero when unmeasured).
    std::vector<Tick> service(tasks_.size(), 0);
    for (const TaskSpan& s : spans) {
        if (s.uid < tasks_.size())
            service[s.uid] = s.service();
    }
    for (const Tick s : service)
        r.serialCycles += s;

    // Longest path ending at each task.  Edges satisfy
    // producer < consumer, so ascending uid is a topological order;
    // finalize each consumer only after every smaller uid.
    std::vector<std::vector<TaskId>> preds(tasks_.size());
    for (const DepEdge& e : edges_)
        preds[e.consumer].push_back(e.producer);

    std::vector<Tick> dist(tasks_.size(), 0);
    std::vector<std::int64_t> pred(tasks_.size(), -1);
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        dist[i] = service[i];
        for (const TaskId p : preds[i]) {
            const Tick through = dist[p] + service[i];
            if (through > dist[i]) {
                dist[i] = through;
                pred[i] = p;
            }
        }
    }

    TaskId tail = 0;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (dist[i] > dist[tail])
            tail = static_cast<TaskId>(i);
    }
    r.criticalPathCycles = dist[tail];

    for (std::int64_t at = tail; at >= 0; at = pred[at])
        r.path.push_back(static_cast<TaskId>(at));
    std::reverse(r.path.begin(), r.path.end());
    return r;
}

} // namespace ts
