/**
 * @file
 * Delta: the full accelerator — N lanes on a mesh with a hardware
 * task dispatcher and a banked memory controller — plus the
 * host-facing API used by examples, tests, and benchmarks.
 *
 * The static-parallel baseline the paper compares against is the same
 * hardware constructed with DeltaConfig::staticBaseline(): policy
 * Static, pipeline recovery off, multicast recovery off.
 */

#ifndef TS_ACCEL_DELTA_HH
#define TS_ACCEL_DELTA_HH

#include <memory>
#include <string>

#include "accel/lane.hh"
#include "accel/mem_node.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "task/dispatcher.hh"
#include "trace/trace.hh"

namespace ts
{

/** Full-system configuration. */
struct DeltaConfig
{
    std::uint32_t lanes = 8;

    SchedPolicy policy = SchedPolicy::WorkAware;
    /** NoC work stealing between lane task units (DESIGN.md §9). */
    StealPolicy steal = StealPolicy::None;
    bool enablePipeline = true;
    bool enableMulticast = true;
    /** Level-barrier execution (static-parallel designs only). */
    bool bulkSynchronous = false;
    std::uint32_t laneQueueCap = 2;

    /** Per-lane scratchpad budget (words) for spatial landing zones;
     *  groups that do not fit spill to the DRAM round-trip
     *  (SchedPolicy::Spatial only, DESIGN.md §10). */
    std::uint64_t spatialBufferWords = 1u << 15;

    /** Spawned tasks inherit their spawner's mapped lane unless that
     *  lane's planned work exceeds this factor times the mean, in
     *  which case they remap to the least-loaded lane. */
    double spatialRemapFactor = 1.5;

    LaneConfig lane;
    MainMemoryConfig mem;
    NocConfig nocLinks; ///< width/height are derived from lanes

    Tick maxCycles = 200'000'000;

    /**
     * Cycle-level tracing (Perfetto/chrome://tracing JSON).  This is
     * the only way tracing is enabled: the accelerator never reads
     * the environment.  The TS_TRACE fallback lives in the options
     * layer — see ts::driver::RunOptions (src/driver/options.hh),
     * whose applyTo() injects it here.
     */
    trace::TracerConfig trace;

    /**
     * When non-empty, Delta::run() dumps the run's full StatSet as
     * flat JSON to this path.  Injected by RunOptions::applyTo()
     * (TS_STATS_JSON fallback); never read from the environment
     * here.
     */
    std::string statsJsonPath;

    /**
     * Tick every component every cycle instead of running the
     * activity-driven core (Simulator::setFastForward(false)).
     * Bit-identical to the default; exists for differential testing
     * and host-throughput comparison.  --no-fast-forward /
     * TS_NO_FAST_FORWARD via RunOptions::applyTo().
     */
    bool noFastForward = false;

    /**
     * Executor shards for the conservative-PDES core: the mesh nodes
     * (dispatcher, each lane, the memory node — each its own
     * partition) are distributed over this many host threads, with
     * inter-router links as the only cross-shard channels.  Results
     * are bit-identical for every value (CI-gated like
     * noFastForward), so like hostProfile it is results-neutral and
     * excluded from driver::canonicalConfig / cache keys.  Forced to
     * 1 when tracing or noFastForward is on (both are
     * single-threaded by contract).  --shards / TS_SHARDS via
     * RunOptions::applyTo().
     */
    std::uint32_t shards = 1;

    /**
     * Time-series sampling interval in simulated cycles; 0 (default)
     * disables the timeline.  When on, the run JSON gains a columnar
     * `delta.timeline.*` section sampled at exact simulated ticks —
     * bit-identical across execution modes, thread counts, and
     * snapshot forks.  Behaviour-relevant for cache keys (it changes
     * the emitted stats), so it participates in
     * driver::canonicalConfig.
     */
    Tick timelineInterval = 0;

    /** Cap on cadence samples (the final quiescence sample is always
     *  appended); part of the cache key like timelineInterval. */
    std::size_t timelineMaxSamples = 512;

    /** Probe-group subset, comma-separated out of
     *  "lanes,ready,noc,dram"; empty = all.  Cache-key relevant. */
    std::string timelineSeries;

    /**
     * Attribute host wall-ns to component classes and simulator
     * phases (sim.host.profile.*).  Host-side observability only —
     * never affects simulated results, and like all sim.host.*
     * counters it is excluded from byte-compared dumps.
     */
    bool hostProfile = false;

    /**
     * Ring capacity of the sleep/wake/commit/event flight recorder
     * dumped on deadlock; 0 (default) disables recording.  Purely
     * diagnostic: no effect on simulated results.
     */
    std::size_t flightRecorder = 0;

    /** TaskStream configuration (all mechanisms on). */
    static DeltaConfig delta(std::uint32_t lanes = 8);

    /** Equivalent static-parallel baseline. */
    static DeltaConfig staticBaseline(std::uint32_t lanes = 8);

    /** Ahead-of-time spatial mapping: producer/consumer co-location
     *  with lane-to-lane forwarding (DESIGN.md §10). */
    static DeltaConfig spatial(std::uint32_t lanes = 8);
};

class DeltaSnapshot;

/** The accelerator instance. */
class Delta
{
  public:
    explicit Delta(const DeltaConfig& cfg);
    ~Delta();

    Delta(const Delta&) = delete;
    Delta& operator=(const Delta&) = delete;

    /**
     * Capture the accelerator's complete mutable state (simulated
     * time, every component, the memory image, the registry
     * watermark).  Taken at a quiescent point — typically right after
     * construction — and restored any number of times with restore(),
     * so one construction serves many runs (snapshot/fork warm
     * starts).  Forked runs are bit-identical to from-scratch runs;
     * see DESIGN.md §7 for the ownership/copy contract.  Does not
     * compose with tracing (checked).
     */
    std::unique_ptr<DeltaSnapshot> snapshot() const;

    /** Rewind to a snapshot taken on this same instance. */
    void restore(const DeltaSnapshot& s);

    /** The functional memory image (workload setup and checking). */
    MemImage& image() { return img_; }

    /** Task-type registry (register DFGs/builtins before building
     *  the task graph). */
    TaskTypeRegistry& registry() { return registry_; }

    /**
     * Execute a task graph to completion and return the full
     * statistics dump.  Key statistics:
     *   delta.cycles          total execution cycles
     *   delta.busyMax/Mean    lane busy-cycle imbalance
     *   mem.linesRead         DRAM read traffic
     *   noc.wordHops          network traffic
     * One run per Delta instance.
     */
    StatSet run(const TaskGraph& graph);

    std::uint32_t numLanes() const { return cfg_.lanes; }

    /** The run's tracer (disabled unless configured; never null). */
    const trace::Tracer& tracer() const { return *tracer_; }
    const Lane& lane(std::uint32_t i) const { return *lanes_.at(i); }
    const Dispatcher& dispatcher() const { return *dispatcher_; }
    const Noc& noc() const { return *noc_; }
    Simulator& sim() { return sim_; }
    const DeltaConfig& config() const { return cfg_; }

    /** NoC node hosting lane @p i. */
    std::uint32_t laneNode(std::uint32_t i) const { return 1 + i; }

  private:
    DeltaConfig cfg_;
    MemImage img_;
    Simulator sim_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<Noc> noc_;
    TaskTypeRegistry registry_;
    std::unique_ptr<MemNode> memNode_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::unique_ptr<Dispatcher> dispatcher_;
    std::unique_ptr<obs::FlightRecorder> recorder_;
    std::unique_ptr<obs::HostProfiler> profiler_;
    bool ran_ = false;
};

/**
 * Opaque value capture of a Delta's state.  Only the Delta instance
 * that produced it can restore it (restore happens in place on the
 * same object graph, which is what keeps component cross-pointers
 * valid).
 */
class DeltaSnapshot
{
  private:
    friend class Delta;

    SimSnapshot sim_;
    MemImage img_;
    TaskTypeRegistry::Mark registryMark_;
    Noc::Counters noc_;
    bool ran_ = false;
};

} // namespace ts

#endif // TS_ACCEL_DELTA_HH
