#include "stream/stream_desc.hh"

#include "mem/mem_image.hh"
#include "mem/scratchpad.hh"
#include "sim/logging.hh"

namespace ts
{

StreamDesc
StreamDesc::linear(Space sp, Addr base, std::uint64_t n,
                   std::int64_t strideWords)
{
    StreamDesc d;
    d.kind = Kind::Linear;
    d.dataSpace = sp;
    d.dataBase = base;
    d.count = n;
    d.strideWords = strideWords;
    return d;
}

StreamDesc
StreamDesc::strided2d(Space sp, Addr base, std::uint64_t outerLen,
                      std::int64_t outerStrideWords,
                      std::uint64_t innerLen,
                      std::int64_t innerStrideWords)
{
    StreamDesc d;
    d.kind = Kind::Strided2D;
    d.dataSpace = sp;
    d.dataBase = base;
    d.count = outerLen;
    d.innerLen = innerLen;
    d.innerStrideWords = innerStrideWords;
    d.outerStrideWords = outerStrideWords;
    return d;
}

StreamDesc
StreamDesc::indirect(Space idxSp, Addr idxBase, std::uint64_t n,
                     Space dataSp, Addr dataBase,
                     std::int64_t scaleWords)
{
    StreamDesc d;
    d.kind = Kind::Indirect;
    d.idxSpace = idxSp;
    d.idxBase = idxBase;
    d.count = n;
    d.dataSpace = dataSp;
    d.dataBase = dataBase;
    d.strideWords = scaleWords;
    return d;
}

StreamDesc
StreamDesc::csr(Space sp, Addr ptrBase, std::uint64_t segs,
                Addr dataBase)
{
    StreamDesc d;
    d.kind = Kind::Csr;
    d.idxSpace = sp;
    d.ptrBase = ptrBase;
    d.count = segs;
    d.dataSpace = sp;
    d.dataBase = dataBase;
    return d;
}

StreamDesc
StreamDesc::csrGather(Space idxSp, Addr ptrBase, Addr colBase,
                      std::uint64_t segs, Space dataSp, Addr dataBase,
                      std::int64_t scaleWords)
{
    StreamDesc d;
    d.kind = Kind::CsrGather;
    d.idxSpace = idxSp;
    d.ptrBase = ptrBase;
    d.idxBase = colBase;
    d.count = segs;
    d.dataSpace = dataSp;
    d.dataBase = dataBase;
    d.strideWords = scaleWords;
    return d;
}

StreamDesc
StreamDesc::csrIndirectSeg(Space idxSp, Addr listBase,
                           std::uint64_t listLen, Addr ptrBase,
                           Space dataSp, Addr dataBase)
{
    StreamDesc d;
    d.kind = Kind::CsrIndirectSeg;
    d.idxSpace = idxSp;
    d.idxBase = listBase;
    d.count = listLen;
    d.ptrBase = ptrBase;
    d.dataSpace = dataSp;
    d.dataBase = dataBase;
    return d;
}

StreamDesc
StreamDesc::pipeIn(std::uint64_t pipeId)
{
    StreamDesc d;
    d.kind = Kind::PipeIn;
    d.pipeId = pipeId;
    return d;
}

std::uint64_t
StreamDesc::elementCount(const MemImage& img) const
{
    switch (kind) {
      case Kind::Linear:
        return count * loops;
      case Kind::Indirect:
        return count;
      case Kind::Strided2D:
        return count * innerLen * rowRepeat;
      case Kind::CsrIndirectSeg: {
        std::uint64_t total = 0;
        for (std::uint64_t k = 0; k < count; ++k) {
            const auto v = img.readInt(idxBase + k * wordBytes);
            total += static_cast<std::uint64_t>(
                img.readInt(ptrBase + (v + 1) * wordBytes) -
                img.readInt(ptrBase + v * wordBytes));
        }
        return total;
      }
      case Kind::Csr:
      case Kind::CsrGather: {
        const auto first =
            static_cast<std::uint64_t>(img.readInt(ptrBase));
        const auto last = static_cast<std::uint64_t>(
            img.readInt(ptrBase + count * wordBytes));
        return last - first;
      }
      case Kind::PipeIn:
        return 0; // length determined by the producer
    }
    return 0;
}

bool
StreamDesc::dramRange(Addr& beginByte, std::uint64_t& words) const
{
    if (kind == Kind::Linear && dataSpace == Space::Dram &&
        strideWords == 1) {
        beginByte = dataBase;
        words = count;
        return true;
    }
    return false;
}

namespace
{

Word
loadWord(Space sp, Addr a, const MemImage& img, const Scratchpad* spm)
{
    if (sp == Space::Dram)
        return img.readWord(a);
    TS_ASSERT(spm != nullptr, "Spm stream without scratchpad");
    return spm->read(a);
}

/** Element address: byte address in DRAM, word offset in SPM. */
Addr
elemByteAddr(Space sp, Addr base, std::int64_t elemWords)
{
    if (sp == Space::Dram)
        return base + static_cast<Addr>(elemWords) * wordBytes;
    return base + static_cast<Addr>(elemWords);
}

} // namespace

std::vector<Token>
expandStream(const StreamDesc& d, const MemImage& img,
             const Scratchpad* spm)
{
    // Produce (value, flags) pairs per the descriptor's semantics.
    std::vector<Token> base;

    auto segFlags = [](std::uint64_t i, std::uint64_t segLen,
                       std::uint64_t n) {
        std::uint8_t f = 0;
        if (segLen != 0 && (i + 1) % segLen == 0)
            f |= kSegEnd;
        if (i + 1 == n)
            f |= kSegEnd | kStreamEnd;
        return f;
    };

    switch (d.kind) {
      case StreamDesc::Kind::Linear: {
        for (std::uint64_t loop = 0; loop < d.loops; ++loop) {
            for (std::uint64_t i = 0; i < d.count; ++i) {
                const Addr a = elemByteAddr(d.dataSpace, d.dataBase,
                                            static_cast<std::int64_t>(i) *
                                                d.strideWords);
                std::uint8_t f = 0;
                if (d.fixedSegLen != 0 && (i + 1) % d.fixedSegLen == 0)
                    f |= kSegEnd;
                if (i + 1 == d.count)
                    f |= kSegEnd | kSeg2End;
                if (loop + 1 == d.loops && i + 1 == d.count)
                    f |= kStreamEnd;
                base.push_back(
                    Token{loadWord(d.dataSpace, a, img, spm), f});
            }
        }
        break;
      }
      case StreamDesc::Kind::Strided2D: {
        for (std::uint64_t o = 0; o < d.count; ++o) {
            for (std::uint32_t r = 0; r < d.rowRepeat; ++r) {
                for (std::uint64_t j = 0; j < d.innerLen; ++j) {
                    const std::int64_t off =
                        static_cast<std::int64_t>(o) *
                            d.outerStrideWords +
                        static_cast<std::int64_t>(j) *
                            d.innerStrideWords;
                    const Addr a =
                        elemByteAddr(d.dataSpace, d.dataBase, off);
                    std::uint8_t f = 0;
                    if (j + 1 == d.innerLen) {
                        f |= kSegEnd;
                        if (r + 1 == d.rowRepeat) {
                            f |= kSeg2End;
                            if (o + 1 == d.count)
                                f |= kStreamEnd;
                        }
                    }
                    base.push_back(
                        Token{loadWord(d.dataSpace, a, img, spm), f});
                }
            }
        }
        break;
      }
      case StreamDesc::Kind::Indirect: {
        for (std::uint64_t i = 0; i < d.count; ++i) {
            const Word idx = loadWord(
                d.idxSpace,
                elemByteAddr(d.idxSpace, d.idxBase,
                             static_cast<std::int64_t>(i)),
                img, spm);
            const Addr a = elemByteAddr(d.dataSpace, d.dataBase,
                                        asInt(idx) * d.strideWords);
            base.push_back(Token{loadWord(d.dataSpace, a, img, spm),
                                 segFlags(i, d.fixedSegLen, d.count)});
        }
        break;
      }
      case StreamDesc::Kind::Csr:
      case StreamDesc::Kind::CsrGather: {
        std::uint64_t total = 0;
        std::vector<std::uint64_t> lens(d.count);
        for (std::uint64_t s = 0; s < d.count; ++s) {
            const auto lo = img.readInt(d.ptrBase + s * wordBytes);
            const auto hi =
                img.readInt(d.ptrBase + (s + 1) * wordBytes);
            if (hi <= lo) {
                fatal("CSR stream has empty segment ", s,
                      " (segments must be non-empty; see DESIGN.md)");
            }
            lens[s] = static_cast<std::uint64_t>(hi - lo);
            total += lens[s];
        }
        std::uint64_t emitted = 0;
        for (std::uint64_t s = 0; s < d.count; ++s) {
            const auto lo = static_cast<std::uint64_t>(
                img.readInt(d.ptrBase + s * wordBytes));
            for (std::uint64_t j = 0; j < lens[s]; ++j, ++emitted) {
                Word v;
                const auto elem =
                    static_cast<std::int64_t>(lo + j);
                if (d.kind == StreamDesc::Kind::Csr) {
                    v = loadWord(d.dataSpace,
                                 elemByteAddr(d.dataSpace, d.dataBase,
                                              elem),
                                 img, spm);
                } else {
                    const Word col = loadWord(
                        d.idxSpace,
                        elemByteAddr(d.idxSpace, d.idxBase, elem), img,
                        spm);
                    const Addr a =
                        elemByteAddr(d.dataSpace, d.dataBase,
                                     asInt(col) * d.strideWords);
                    v = loadWord(d.dataSpace, a, img, spm);
                }
                std::uint8_t f = 0;
                if (j + 1 == lens[s])
                    f |= kSegEnd;
                if (emitted + 1 == total)
                    f |= kSegEnd | kStreamEnd;
                base.push_back(Token{v, f});
            }
        }
        break;
      }
      case StreamDesc::Kind::CsrIndirectSeg: {
        for (std::uint64_t k = 0; k < d.count; ++k) {
            const auto v = asInt(loadWord(
                d.idxSpace, elemByteAddr(d.idxSpace, d.idxBase,
                                         static_cast<std::int64_t>(k)),
                img, spm));
            const auto lo = img.readInt(d.ptrBase + v * wordBytes);
            const auto hi =
                img.readInt(d.ptrBase + (v + 1) * wordBytes);
            if (hi <= lo) {
                fatal("CsrIndirectSeg: empty segment for id ", v,
                      " (segments must be non-empty)");
            }
            for (std::int64_t j = lo; j < hi; ++j) {
                const Addr a = elemByteAddr(d.dataSpace, d.dataBase, j);
                std::uint8_t f = 0;
                if (j + 1 == hi) {
                    f |= kSegEnd;
                    if (k + 1 == d.count)
                        f |= kStreamEnd;
                }
                base.push_back(
                    Token{loadWord(d.dataSpace, a, img, spm), f});
            }
        }
        break;
      }
      case StreamDesc::Kind::PipeIn:
        fatal("expandStream cannot expand a PipeIn stream");
    }

    if (d.repeat <= 1)
        return base;

    std::vector<Token> out;
    out.reserve(base.size() * d.repeat);
    for (const Token& t : base) {
        for (std::uint32_t r = 0; r < d.repeat; ++r) {
            const bool lastCopy = r + 1 == d.repeat;
            out.push_back(Token{t.value,
                                lastCopy ? t.flags : std::uint8_t{0}});
        }
    }
    return out;
}

} // namespace ts
