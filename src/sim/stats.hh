/**
 * @file
 * Lightweight statistics collection.
 *
 * Components own plain counters and report them into a StatSet, a
 * hierarchical name -> value map that experiments query and dump.
 */

#ifndef TS_SIM_STATS_HH
#define TS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ts
{

/** A flat, ordered collection of named statistic values. */
class StatSet
{
  public:
    /** Record (or overwrite) a statistic under a dotted path. */
    void set(const std::string& name, double value);

    /** Add to a statistic, creating it at zero if absent. */
    void add(const std::string& name, double value);

    /** Whether a statistic with this exact name exists. */
    bool has(const std::string& name) const;

    /** Value of a statistic; fatal if absent. */
    double get(const std::string& name) const;

    /** Value of a statistic, or fallback if absent. */
    double getOr(const std::string& name, double fallback) const;

    /** Sum of every statistic whose name starts with the prefix. */
    double sumPrefix(const std::string& prefix) const;

    /** All (name, value) pairs whose name starts with the prefix. */
    std::vector<std::pair<std::string, double>>
    matchPrefix(const std::string& prefix) const;

    /** Pretty-print every statistic, one per line. */
    void dump(std::ostream& os) const;

    /** Write every statistic as one flat JSON object (dotted-path
     *  keys), full double precision, sorted by name. */
    void dumpJson(std::ostream& os) const;

    /** Remove all statistics. */
    void clear() { values_.clear(); }

    /** Number of statistics recorded. */
    std::size_t size() const { return values_.size(); }

  private:
    std::map<std::string, double> values_;
};

/**
 * A fixed-bucket histogram for distribution-style statistics
 * (e.g. per-lane busy cycles, packet latencies).
 */
class Histogram
{
  public:
    /** Create with the given bucket boundaries (ascending). */
    explicit Histogram(std::vector<double> bounds);

    /** Record one sample. */
    void sample(double v);

    /** Number of samples recorded so far. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples. */
    double mean() const;

    /** Largest sample seen (0 when empty). */
    double max() const { return max_; }

    /** Count in bucket i (the final bucket is overflow). */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /** Number of buckets, including the overflow bucket. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Report buckets and moments into a StatSet under a prefix. */
    void report(StatSet& stats, const std::string& prefix) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

} // namespace ts

#endif // TS_SIM_STATS_HH
