#include "driver/sweep.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/json.hh"
#include "cache/run_cache.hh"
#include "sim/logging.hh"
#include "task/task_graph.hh"

namespace ts
{
namespace driver
{

namespace
{

std::string
formatScale(double scale)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", scale);
    return buf;
}

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** Sample mean/stddev over @p xs (stddev 0 when n < 2). */
void
meanStddev(const std::vector<double>& xs, double& mean,
           double& stddev)
{
    mean = 0.0;
    stddev = 0.0;
    if (xs.empty())
        return;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2)
        return;
    double ss = 0.0;
    for (const double x : xs)
        ss += (x - mean) * (x - mean);
    stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

} // namespace

const std::vector<std::string>&
sweepConfigNames()
{
    static const std::vector<std::string> names = {
        "static", "dyn",   "work",    "work-steal",
        "pipe",   "delta", "spatial"};
    return names;
}

ConfigVariant
sweepConfig(const std::string& name, std::uint32_t lanes)
{
    ConfigVariant v;
    v.name = name;
    if (name == "static") {
        v.cfg = DeltaConfig::staticBaseline(lanes);
    } else if (name == "dyn") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.policy = SchedPolicy::DynCount;
        v.cfg.enablePipeline = false;
        v.cfg.enableMulticast = false;
    } else if (name == "work") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.enablePipeline = false;
        v.cfg.enableMulticast = false;
    } else if (name == "work-steal") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.enablePipeline = false;
        v.cfg.enableMulticast = false;
        v.cfg.steal = StealPolicy::StealHalf;
    } else if (name == "pipe") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.enableMulticast = false;
    } else if (name == "delta") {
        v.cfg = DeltaConfig::delta(lanes);
    } else if (name == "spatial") {
        v.cfg = DeltaConfig::spatial(lanes);
    } else {
        std::string valid;
        for (const std::string& n : sweepConfigNames())
            valid += (valid.empty() ? "" : ", ") + n;
        fatal("unknown sweep config '", name, "'; valid configs: ",
              valid);
    }
    return v;
}

std::vector<ConfigVariant>
sweepConfigsFromList(const std::string& list, std::uint32_t lanes)
{
    std::vector<ConfigVariant> out;
    std::string cur;
    const auto flush = [&] {
        // Trim surrounding whitespace.
        const auto b = cur.find_first_not_of(" \t");
        const auto e = cur.find_last_not_of(" \t");
        const std::string name =
            b == std::string::npos ? "" : cur.substr(b, e - b + 1);
        if (!name.empty())
            out.push_back(sweepConfig(name, lanes));
        cur.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            cur += c;
    }
    flush();
    if (out.empty()) {
        out.push_back(sweepConfig("static", lanes));
        out.push_back(sweepConfig("delta", lanes));
    }
    return out;
}

std::string
SweepSpec::baselineName() const
{
    if (!baseline.empty())
        return baseline;
    return configs.size() > 1 ? configs.front().name : std::string();
}

std::string
RunPoint::tag() const
{
    return std::string(wkName(workload)) + "_" + config + "_l" +
           std::to_string(lanes) + "_s" + std::to_string(seed) +
           "_x" + formatScale(scale);
}

std::string
canonicalConfig(const DeltaConfig& cfg)
{
    std::ostringstream os;
    os << "lanes=" << cfg.lanes
       << " policy=" << schedPolicyName(cfg.policy)
       << " steal=" << stealPolicyName(cfg.steal)
       << " pipeline=" << cfg.enablePipeline
       << " multicast=" << cfg.enableMulticast
       << " bulkSync=" << cfg.bulkSynchronous
       << " laneQueueCap=" << cfg.laneQueueCap
       << " re=" << cfg.lane.numReadEngines
       << " we=" << cfg.lane.numWriteEngines
       << " mshrs=" << cfg.lane.maxOutstandingLines
       << " fabric=" << cfg.lane.fabric.geom.rows << "x"
       << cfg.lane.fabric.geom.cols << "x"
       << cfg.lane.fabric.geom.linkMultiplicity << "/"
       << cfg.lane.fabric.portFifoDepth << "/"
       << cfg.lane.fabric.operandFifoDepth << "/"
       << cfg.lane.fabric.configBaseCycles << "/"
       << cfg.lane.fabric.configPerNodeCycles
       << " spm=" << cfg.lane.spm.sizeWords << "/"
       << cfg.lane.spm.portsPerCycle
       << " read=" << cfg.lane.read.deliverWidth << "/"
       << cfg.lane.read.genPerCycle << "/"
       << cfg.lane.read.fetcher.maxOutstanding << "/"
       << cfg.lane.read.fetcher.maxWindow << "/"
       << cfg.lane.read.fetcher.issuesPerCycle
       << " write=" << cfg.lane.write.width << "/"
       << cfg.lane.write.writeQueueDepth
       << " mem=" << cfg.mem.numBanks << "/" << cfg.mem.serviceLatency
       << "/" << cfg.mem.bankOccupancy << "/" << cfg.mem.issueWidth
       << "/" << cfg.mem.queueCapacity
       << " noc=" << cfg.nocLinks.channelCapacity << "/"
       << cfg.nocLinks.linkWords
       << " spatialBuf=" << cfg.spatialBufferWords
       << " spatialRemap=" << cfg.spatialRemapFactor
       << " maxCycles=" << cfg.maxCycles
       << " noFastForward=" << cfg.noFastForward
       << " timeline=" << cfg.timelineInterval << "/"
       << cfg.timelineMaxSamples << "/" << cfg.timelineSeries;
    return os.str();
}

namespace
{

/** The DeltaConfig a point runs under, mirroring exactly what
 *  executePoint builds (minus trace wiring, which bypasses the
 *  cache). */
DeltaConfig
resolvePointConfig(const SweepSpec& spec, const RunPoint& point)
{
    DeltaConfig cfg;
    for (const ConfigVariant& c : spec.configs) {
        if (c.name == point.config)
            cfg = c.cfg;
    }
    if (spec.noFastForward)
        cfg.noFastForward = true;
    if (spec.timelineInterval > 0) {
        cfg.timelineInterval = spec.timelineInterval;
        cfg.timelineMaxSamples = spec.timelineMaxSamples;
        cfg.timelineSeries = spec.timelineSeries;
    }
    // Host-side only: changes sim.host.* output but never simulated
    // results, so it stays out of canonicalConfig/cache keys.
    if (spec.hostProfile)
        cfg.hostProfile = true;
    // Results-neutral like hostProfile (bit-identity is CI-gated),
    // so it is likewise excluded from canonicalConfig/cache keys.
    if (cfg.shards == 1)
        cfg.shards = spec.shards;
    // Behaviour-relevant: canonicalConfig covers cfg.steal, so a
    // spec-level override changes every point's cache key.
    if (cfg.steal == StealPolicy::None)
        cfg.steal = spec.steal;
    // Same for the scheduling policy (canonicalConfig covers
    // cfg.policy).
    if (spec.schedSet)
        cfg.policy = spec.sched;
    return cfg;
}

} // namespace

std::string
canonicalCell(const SweepSpec& spec, const RunPoint& point)
{
    std::ostringstream os;
    // v3: spatial scheduling extended the canonical-config
    // vocabulary (policy=spatial, spatialBuf, spatialRemap).
    os << "v3 wk=" << wkName(point.workload)
       << " config=" << point.config << " seed=" << point.seed
       << " scale=" << jsonNumber(point.scale) << " | "
       << canonicalConfig(resolvePointConfig(spec, point));
    return os.str();
}

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec))
{
    if (spec_.workloads.empty())
        fatal("sweep: no workloads selected");
    if (spec_.configs.empty())
        fatal("sweep: no configs selected");
    if (spec_.seeds.empty())
        fatal("sweep: no seeds selected");
    if (spec_.scales.empty())
        fatal("sweep: no scales selected");
    for (const double s : spec_.scales) {
        if (!(s > 0))
            fatal("sweep: scales must be positive, got ", s);
    }
    if (!spec_.baseline.empty()) {
        bool found = false;
        for (const ConfigVariant& c : spec_.configs)
            found = found || c.name == spec_.baseline;
        if (!found) {
            std::string valid;
            for (const ConfigVariant& c : spec_.configs)
                valid += (valid.empty() ? "" : ", ") + c.name;
            fatal("sweep: baseline '", spec_.baseline,
                  "' is not in the config list (", valid, ")");
        }
    }

    // Deterministic grid order: workload-major, then scale, seed,
    // config — the paired baseline/config runs of one point land
    // adjacently, and every aggregate walks this same order.
    for (const Wk w : spec_.workloads) {
        for (const double scale : spec_.scales) {
            for (const std::uint64_t seed : spec_.seeds) {
                for (const ConfigVariant& c : spec_.configs) {
                    RunPoint p;
                    p.workload = w;
                    p.config = c.name;
                    p.seed = seed;
                    p.scale = scale;
                    p.lanes = c.cfg.lanes;
                    points_.push_back(p);
                }
            }
        }
    }
}

namespace
{

/**
 * The bench-JSON wrapper for a finished run.  This exact string is
 * both the per-run file under benchJsonDir and the run-cache
 * payload, so warm replays reproduce the file byte-for-byte.
 */
std::string
benchWrapperJson(const RunOutcome& out)
{
    std::ostringstream os;
    os << "{\n  \"workload\": \"" << wkName(out.point.workload)
       << "\",\n  \"config\": \"" << out.point.config
       << "\",\n  \"lanes\": " << out.point.lanes
       << ",\n  \"seed\": " << out.point.seed
       << ",\n  \"scale\": " << formatScale(out.point.scale)
       << ",\n  \"correct\": " << (out.correct ? "true" : "false")
       << ",\n  \"cycles\": " << jsonNumber(out.cycles)
       << ",\n  \"stats\": ";
    out.stats.dumpJson(os);
    os << "}\n";
    return os.str();
}

void
writeBenchJson(const SweepSpec& spec, const RunPoint& point,
               const std::string& payload)
{
    const std::string path =
        spec.benchJsonDir + "/" + point.tag() + ".json";
    std::ofstream os(path, std::ios::binary);
    if (!os)
        warn("sweep: cannot write '", path, "'");
    else
        os << payload;
}

/**
 * Rebuild a RunOutcome from a cached bench-wrapper payload.  JSON
 * null stat values (dumpJson's rendering of non-finite doubles)
 * rehydrate as quiet NaN, so a re-dump reproduces the null.
 * @return false when the payload does not parse as a run result
 * (the caller then treats the entry as a miss and executes).
 */
bool
rehydrateOutcome(const std::string& payload, const RunPoint& point,
                 RunOutcome& out)
{
    analysis::Json j;
    if (!analysis::parseJson(payload, j) || !j.isObj())
        return false;
    if (!j.has("correct") || !j.has("cycles") || !j.has("stats") ||
        j.at("correct").kind != analysis::Json::Kind::Bool ||
        !j.at("stats").isObj())
        return false;

    out.point = point;
    out.failed = false;
    out.correct = j.at("correct").b;
    for (const auto& [name, v] : j.at("stats").obj) {
        if (v.isNum())
            out.stats.set(name, v.num);
        else if (v.kind == analysis::Json::Kind::Null)
            out.stats.set(name,
                          std::numeric_limits<double>::quiet_NaN());
        else
            return false;
    }
    out.cycles = j.at("cycles").isNum()
                     ? j.at("cycles").num
                     : std::numeric_limits<double>::quiet_NaN();
    return true;
}

/**
 * One warm-start slot: a constructed accelerator plus its pristine
 * post-construction snapshot.  Each worker thread keeps a few slots
 * keyed by canonical config, so a sweep builds each distinct
 * configuration once per thread and forks it for every (workload,
 * seed, scale) cell.
 */
struct ForkSlot
{
    std::string key;
    std::unique_ptr<Delta> delta;
    std::unique_ptr<DeltaSnapshot> snap;
};

constexpr std::size_t kMaxForkSlots = 8;

std::vector<ForkSlot>&
forkSlots()
{
    thread_local std::vector<ForkSlot> slots;
    return slots;
}

void
dropForkSlot(const std::string& key)
{
    auto& slots = forkSlots();
    for (auto it = slots.begin(); it != slots.end(); ++it) {
        if (it->key == key) {
            slots.erase(it);
            return;
        }
    }
}

/** Execute one grid point in full isolation on the calling thread.
 *  Consults the run cache first (when given); on a miss, runs —
 *  forking a per-config snapshot unless disabled — and publishes
 *  the finished result. */
RunOutcome
executePoint(const SweepSpec& spec, const RunPoint& point,
             const cache::RunCache* cache, bool& fromCache)
{
    fromCache = false;
    RunOutcome out;
    out.point = point;

    std::string cellKey, cacheKey;
    if (cache != nullptr) {
        cellKey = canonicalCell(spec, point);
        cacheKey = cache::RunCache::keyFor(
            cache::RunCache::codeFingerprint(), cellKey);
        std::string payload;
        if (cache->lookup(cacheKey, payload)) {
            RunOutcome cached;
            if (rehydrateOutcome(payload, point, cached)) {
                if (!spec.benchJsonDir.empty())
                    writeBenchJson(spec, point, payload);
                fromCache = true;
                return cached;
            }
            warn("sweep: corrupt cache entry for ", point.tag(),
                 "; re-running");
        }
    }

    // Tracing holds external state a rewind would corrupt, so traced
    // sweeps always build from scratch.
    const bool fork = spec.tracePath.empty() && !spec.noSnapshotFork;
    std::string cfgKey;
    try {
        DeltaConfig cfg = resolvePointConfig(spec, point);
        if (!spec.tracePath.empty())
            cfg.trace = traceConfigTagged(spec.tracePath, point.tag());

        SuiteParams sp;
        sp.seed = point.seed;
        sp.scale = point.scale;
        auto wl = makeWorkload(point.workload, sp);

        Delta* delta = nullptr;
        std::unique_ptr<Delta> fresh;
        if (fork) {
            cfgKey = canonicalConfig(cfg);
            auto& slots = forkSlots();
            for (ForkSlot& s : slots) {
                if (s.key == cfgKey) {
                    s.delta->restore(*s.snap);
                    delta = s.delta.get();
                    break;
                }
            }
            if (delta == nullptr) {
                ForkSlot slot;
                slot.key = cfgKey;
                slot.delta = std::make_unique<Delta>(cfg);
                slot.snap = slot.delta->snapshot();
                slots.push_back(std::move(slot));
                if (slots.size() > kMaxForkSlots)
                    slots.erase(slots.begin());
                delta = slots.back().delta.get();
            }
        } else {
            fresh = std::make_unique<Delta>(cfg);
            delta = fresh.get();
        }

        TaskGraph graph;
        wl->build(*delta, graph);
        out.stats = delta->run(graph);
        out.cycles = out.stats.get("delta.cycles");
        out.correct = wl->check(delta->image());
    } catch (const std::exception& e) {
        out.failed = true;
        out.error = e.what();
        // The slot's Delta may be stuck mid-run; rebuild next time.
        if (fork && !cfgKey.empty())
            dropForkSlot(cfgKey);
    }

    if (!out.failed) {
        const std::string payload = benchWrapperJson(out);
        if (!spec.benchJsonDir.empty())
            writeBenchJson(spec, point, payload);
        if (cache != nullptr && out.ok())
            cache->publish(cacheKey, cellKey, payload);
    }
    return out;
}

} // namespace

void
parallelForWorkers(std::size_t n, unsigned jobs,
                   const std::function<void(unsigned, std::size_t)>& fn)
{
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(resolveJobs(jobs), n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(0, i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
        pool.emplace_back([&, t] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(t, i);
            }
        });
    }
    for (std::thread& t : pool)
        t.join();
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)>& fn)
{
    parallelForWorkers(n, jobs,
                       [&](unsigned, std::size_t i) { fn(i); });
}

SweepReport
Sweep::run()
{
    SweepReport report;
    report.spec = spec_;
    report.runs.resize(points_.size());

    std::unique_ptr<cache::RunCache> cache;
    if (!spec_.cacheDir.empty()) {
        if (!spec_.tracePath.empty()) {
            warn("sweep: tracing requested; bypassing the run cache");
        } else {
            cache::RunCacheConfig ccfg;
            ccfg.dir = spec_.cacheDir;
            ccfg.capBytes = spec_.cacheCapBytes;
            cache = std::make_unique<cache::RunCache>(ccfg);
        }
    }

    const auto start = std::chrono::steady_clock::now();
    std::mutex ioMutex;
    std::size_t done = 0;
    std::uint64_t hits = 0, misses = 0;

    parallelForWorkers(points_.size(), spec_.jobs, [&](unsigned worker,
                                                       std::size_t i) {
        if (spec_.onCellStart) {
            std::lock_guard<std::mutex> lock(ioMutex);
            spec_.onCellStart(worker, points_[i]);
        }
        bool fromCache = false;
        RunOutcome out =
            executePoint(spec_, points_[i], cache.get(), fromCache);
        {
            std::lock_guard<std::mutex> lock(ioMutex);
            ++done;
            if (cache != nullptr)
                ++(fromCache ? hits : misses);
            if (spec_.progress) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                const double eta =
                    elapsed / static_cast<double>(done) *
                    static_cast<double>(points_.size() - done);
                const char* status =
                    out.failed
                        ? "FAILED"
                        : (out.correct
                               ? (fromCache ? "ok (cache)" : "ok")
                               : "INCORRECT");
                std::fprintf(
                    stderr, "[%3zu/%zu] %-32s %s  (%.1fs elapsed",
                    done, points_.size(), out.point.tag().c_str(),
                    status, elapsed);
                if (done < points_.size())
                    std::fprintf(stderr, ", ETA %.0fs", eta);
                std::fprintf(stderr, ")\n");
                if (out.failed)
                    std::fprintf(stderr, "        %s\n",
                                 out.error.c_str());
            }
            if (spec_.onResult)
                spec_.onResult(out, fromCache);
        }
        report.runs[i] = std::move(out);
    });

    report.cacheHits = hits;
    report.cacheMisses = misses;
    return report;
}

const RunOutcome*
SweepReport::find(Wk w, const std::string& config,
                  std::uint64_t seed, double scale) const
{
    for (const RunOutcome& r : runs) {
        if (r.point.workload == w && r.point.config == config &&
            r.point.seed == seed && r.point.scale == scale)
            return &r;
    }
    return nullptr;
}

bool
SweepReport::allOk() const
{
    return failures() == 0;
}

std::size_t
SweepReport::failures() const
{
    std::size_t n = 0;
    for (const RunOutcome& r : runs)
        n += r.ok() ? 0 : 1;
    return n;
}

std::vector<CellAggregate>
SweepReport::aggregates() const
{
    std::vector<CellAggregate> out;
    for (const Wk w : spec.workloads) {
        for (const double scale : spec.scales) {
            for (const ConfigVariant& c : spec.configs) {
                CellAggregate cell;
                cell.workload = w;
                cell.config = c.name;
                cell.scale = scale;
                std::vector<double> cycles;
                for (const std::uint64_t seed : spec.seeds) {
                    const RunOutcome* r =
                        find(w, c.name, seed, scale);
                    if (r != nullptr && r->ok())
                        cycles.push_back(r->cycles);
                }
                cell.n = cycles.size();
                meanStddev(cycles, cell.meanCycles,
                           cell.stddevCycles);
                out.push_back(cell);
            }
        }
    }
    return out;
}

std::vector<PairedSpeedup>
SweepReport::pairedSpeedups() const
{
    std::vector<PairedSpeedup> out;
    const std::string base = spec.baselineName();
    if (base.empty())
        return out;
    for (const Wk w : spec.workloads) {
        for (const double scale : spec.scales) {
            for (const ConfigVariant& c : spec.configs) {
                if (c.name == base)
                    continue;
                PairedSpeedup ps;
                ps.workload = w;
                ps.config = c.name;
                ps.scale = scale;
                std::vector<double> ratios;
                for (const std::uint64_t seed : spec.seeds) {
                    const RunOutcome* b = find(w, base, seed, scale);
                    const RunOutcome* r =
                        find(w, c.name, seed, scale);
                    if (b != nullptr && r != nullptr && b->ok() &&
                        r->ok() && r->cycles > 0)
                        ratios.push_back(b->cycles / r->cycles);
                }
                ps.n = ratios.size();
                meanStddev(ratios, ps.mean, ps.stddev);
                out.push_back(ps);
            }
        }
    }
    return out;
}

void
SweepReport::writeJson(std::ostream& os) const
{
    os << "{\n  \"grid\": {\n    \"workloads\": [";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i)
        os << (i > 0 ? ", " : "") << '"' << wkName(spec.workloads[i])
           << '"';
    os << "],\n    \"configs\": [";
    for (std::size_t i = 0; i < spec.configs.size(); ++i)
        os << (i > 0 ? ", " : "") << '"'
           << jsonEscape(spec.configs[i].name) << '"';
    os << "],\n    \"seeds\": [";
    for (std::size_t i = 0; i < spec.seeds.size(); ++i)
        os << (i > 0 ? ", " : "") << spec.seeds[i];
    os << "],\n    \"scales\": [";
    for (std::size_t i = 0; i < spec.scales.size(); ++i)
        os << (i > 0 ? ", " : "") << formatScale(spec.scales[i]);
    os << "],\n    \"baseline\": \""
       << jsonEscape(spec.baselineName()) << "\"\n  },\n";

    os << "  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunOutcome& r = runs[i];
        os << (i > 0 ? ",\n" : "\n") << "    {\"tag\": \""
           << jsonEscape(r.point.tag()) << "\", \"workload\": \""
           << wkName(r.point.workload) << "\", \"config\": \""
           << jsonEscape(r.point.config)
           << "\", \"seed\": " << r.point.seed
           << ", \"scale\": " << formatScale(r.point.scale)
           << ", \"lanes\": " << r.point.lanes << ", \"correct\": "
           << (r.correct ? "true" : "false") << ", \"failed\": "
           << (r.failed ? "true" : "false");
        if (r.failed)
            os << ", \"error\": \"" << jsonEscape(r.error) << '"';
        os << ", \"cycles\": " << jsonNumber(r.cycles)
           << ",\n     \"stats\": ";
        if (r.failed)
            os << "{}";
        else
            // Host-side wall-clock counters are non-deterministic;
            // the aggregate report must stay byte-reproducible.
            r.stats.dumpJson(os, "sim.host.");
        os << "}";
    }
    os << "\n  ],\n";

    os << "  \"aggregates\": [";
    const auto aggs = aggregates();
    for (std::size_t i = 0; i < aggs.size(); ++i) {
        const CellAggregate& a = aggs[i];
        os << (i > 0 ? ",\n" : "\n") << "    {\"workload\": \""
           << wkName(a.workload) << "\", \"config\": \""
           << jsonEscape(a.config)
           << "\", \"scale\": " << formatScale(a.scale)
           << ", \"n\": " << a.n
           << ", \"meanCycles\": " << jsonNumber(a.meanCycles)
           << ", \"stddevCycles\": " << jsonNumber(a.stddevCycles)
           << "}";
    }
    os << "\n  ],\n";

    os << "  \"speedups\": [";
    const auto sps = pairedSpeedups();
    for (std::size_t i = 0; i < sps.size(); ++i) {
        const PairedSpeedup& s = sps[i];
        os << (i > 0 ? ",\n" : "\n") << "    {\"workload\": \""
           << wkName(s.workload) << "\", \"config\": \""
           << jsonEscape(s.config)
           << "\", \"scale\": " << formatScale(s.scale)
           << ", \"n\": " << s.n
           << ", \"mean\": " << jsonNumber(s.mean)
           << ", \"stddev\": " << jsonNumber(s.stddev) << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace driver
} // namespace ts
