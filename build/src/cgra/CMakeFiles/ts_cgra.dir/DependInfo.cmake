
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgra/dfg.cc" "src/cgra/CMakeFiles/ts_cgra.dir/dfg.cc.o" "gcc" "src/cgra/CMakeFiles/ts_cgra.dir/dfg.cc.o.d"
  "/root/repo/src/cgra/fabric.cc" "src/cgra/CMakeFiles/ts_cgra.dir/fabric.cc.o" "gcc" "src/cgra/CMakeFiles/ts_cgra.dir/fabric.cc.o.d"
  "/root/repo/src/cgra/mapper.cc" "src/cgra/CMakeFiles/ts_cgra.dir/mapper.cc.o" "gcc" "src/cgra/CMakeFiles/ts_cgra.dir/mapper.cc.o.d"
  "/root/repo/src/cgra/op.cc" "src/cgra/CMakeFiles/ts_cgra.dir/op.cc.o" "gcc" "src/cgra/CMakeFiles/ts_cgra.dir/op.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
