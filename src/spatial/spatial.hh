/**
 * @file
 * Shared vocabulary of the ahead-of-time spatial mapper (DESIGN.md
 * §10): which producer/consumer edges are forwardable lane-to-lane,
 * how large a consumer's landing buffer must be, and the lane-side
 * landing tracker that gates consumers on forwarded-stream arrival.
 *
 * Header-only on purpose: the dispatcher (ts_task) and the lanes
 * (ts_accel) both consume these rules, and keeping them in one place
 * guarantees the AOT plan and the runtime dispatch decisions agree.
 */

#ifndef TS_SPATIAL_SPATIAL_HH
#define TS_SPATIAL_SPATIAL_HH

#include <map>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "stream/stream_desc.hh"

namespace ts
{
namespace spatial
{

/**
 * Whether a consumer input port can be served from a spatial landing
 * zone: a Linear stride-1 DRAM read of a statically known extent.
 * Everything else (gathers, CSR segments, pipes, scratchpad reads)
 * keeps its normal path.
 */
inline bool
landingEligibleInput(const StreamDesc& d)
{
    return d.kind == StreamDesc::Kind::Linear &&
           d.dataSpace == Space::Dram && d.strideWords == 1 &&
           d.repeat == 1 && d.loops == 1 && d.count > 0;
}

/**
 * Whether a producer output port can be forwarded: a dense stride-1
 * DRAM write-back not already claimed by pipeline forwarding.
 */
inline bool
forwardableOutput(const WriteDesc& w)
{
    return w.space == Space::Dram && w.toMemory &&
           w.strideWords == 1 && w.pipeDstMask == 0;
}

/** Whether @p w writes into the range @p in reads (base containment
 *  — the producer's extent is unknown ahead of time, so the match is
 *  by the write cursor's starting point). */
inline bool
outputFeedsInput(const WriteDesc& w, const StreamDesc& in)
{
    return w.base >= in.dataBase &&
           w.base < in.dataBase + in.count * wordBytes;
}

/** Landing-buffer words a forwarded consumer port occupies: the full
 *  port extent, rounded up to whole lines (barrier-semantics
 *  forwarding buffers the producer's complete output). */
inline std::uint64_t
landingBufWords(const StreamDesc& in)
{
    return divCeil(in.count, std::uint64_t{lineWords}) * lineWords;
}

/** The landing-group identity of a consumer input port (the same
 *  (uid << 3) | port packing the pipe machinery uses; @p consumer is
 *  its TaskId). */
inline std::uint64_t
landingGroup(std::uint32_t consumer, std::uint8_t port)
{
    return (static_cast<std::uint64_t>(consumer) << 3) | port;
}

/**
 * Lane-side tracker of spatially forwarded streams.  Producers send
 * timing-only chunks (the functional words are already in the global
 * memory image); the tracker counts arrived words and end-of-stream
 * markers per landing group, and the task unit holds a gated consumer
 * in WaitFill until every forwarding producer's done marker is in.
 * Copyable by value for snapshot/fork.
 */
class LandingTracker
{
  public:
    void
    deliver(std::uint64_t group, std::uint32_t words, bool done)
    {
        Group& g = groups_[group];
        g.words += words;
        if (g.words > g.peakWords)
            g.peakWords = g.words;
        if (done)
            ++g.dones;
        ++chunks_;
        words_ += words;
    }

    /** Whether @p needDones forwarding producers have finished
     *  streaming into @p group. */
    bool
    complete(std::uint64_t group, std::uint32_t needDones) const
    {
        if (needDones == 0)
            return true;
        const auto it = groups_.find(group);
        return it != groups_.end() && it->second.dones >= needDones;
    }

    /** Consumer finished: sample the group's occupancy high-water
     *  mark into the run stats and free the tracking slot. */
    void
    release(std::uint64_t group)
    {
        const auto it = groups_.find(group);
        if (it == groups_.end())
            return;
        statSample("spatial.groupPeakWords",
                   static_cast<double>(it->second.peakWords));
        groups_.erase(it);
    }

    std::uint64_t chunksReceived() const { return chunks_; }
    std::uint64_t wordsReceived() const { return words_; }

  private:
    struct Group
    {
        std::uint64_t words = 0;
        std::uint32_t dones = 0;
        std::uint64_t peakWords = 0;
    };

    std::map<std::uint64_t, Group> groups_;
    std::uint64_t chunks_ = 0;
    std::uint64_t words_ = 0;
};

} // namespace spatial
} // namespace ts

#endif // TS_SPATIAL_SPATIAL_HH
