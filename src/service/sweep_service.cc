#include "service/sweep_service.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/json.hh"
#include "driver/grid.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace ts
{
namespace service
{

namespace
{

/** Fill @p addr for @p path (fatal when it does not fit sun_path). */
sockaddr_un
unixAddr(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long (", path.size(), " bytes, max ",
              sizeof(addr.sun_path) - 1, "): '", path, "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** Send `line + "\n"` fully; false once the peer is gone.  Uses
 *  MSG_NOSIGNAL so a vanished client surfaces as an error return
 *  instead of SIGPIPE. */
bool
writeLine(int fd, const std::string& line)
{
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Incremental '\n'-delimited reads from a stream socket. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Next full line (without the newline); false on EOF/error. */
    bool
    next(std::string& line)
    {
        for (;;) {
            const std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n <= 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

/** Closes an fd on scope exit. */
struct FdGuard
{
    int fd = -1;
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

std::string
errorEvent(const std::string& message)
{
    return "{\"event\": \"error\", \"message\": \"" +
           jsonEscape(message) + "\"}";
}

/**
 * Execute one sweep request on @p fd, streaming start/cell/done
 * events.  Every failure mode becomes an error event; the connection
 * (and daemon) survive bad requests.
 */
void
handleSweep(int fd, const analysis::Json& req)
{
    driver::RunOptions opt;
    driver::GridSettings grid;
    try {
        if (!req.has("grid") || !req.at("grid").isObj()) {
            writeLine(fd, errorEvent(
                              "sweep request needs a \"grid\" object"));
            return;
        }
        for (const auto& [key, value] : req.at("grid").obj) {
            if (value.kind != analysis::Json::Kind::Str) {
                writeLine(fd,
                          errorEvent("grid value for '" + key +
                                     "' must be a string"));
                return;
            }
            driver::applyGridKey(key, value.str, opt, grid);
        }

        driver::SweepSpec spec = driver::buildSweepSpec(opt, grid);
        spec.progress = false;
        spec.onResult = [fd](const driver::RunOutcome& out,
                             bool fromCache) {
            std::ostringstream ev;
            ev << "{\"event\": \"cell\", \"tag\": \""
               << jsonEscape(out.point.tag()) << "\", \"source\": \""
               << (fromCache ? "cache" : "run") << "\", \"ok\": "
               << (out.ok() ? "true" : "false")
               << ", \"cycles\": " << jsonNumber(out.cycles) << "}";
            writeLine(fd, ev.str());
        };

        driver::Sweep sweep(std::move(spec));
        writeLine(fd, "{\"event\": \"start\", \"runs\": " +
                          std::to_string(sweep.points().size()) + "}");
        const driver::SweepReport report = sweep.run();

        if (!grid.out.empty()) {
            std::ofstream os(grid.out, std::ios::binary);
            if (!os) {
                writeLine(fd, errorEvent("cannot write report '" +
                                         grid.out + "'"));
                return;
            }
            report.writeJson(os);
        }

        std::ostringstream done;
        done << "{\"event\": \"done\", \"ok\": "
             << (report.allOk() ? "true" : "false")
             << ", \"failures\": " << report.failures()
             << ", \"hits\": " << report.cacheHits
             << ", \"misses\": " << report.cacheMisses << "}";
        writeLine(fd, done.str());
    } catch (const std::exception& e) {
        writeLine(fd, errorEvent(e.what()));
    }
}

/** Serve every request of one connection; true = shutdown asked. */
bool
handleConnection(int fd, std::uint64_t& served,
                 std::uint64_t maxRequests)
{
    LineReader reader(fd);
    std::string line;
    while (reader.next(line)) {
        if (line.empty())
            continue;
        ++served;
        analysis::Json req;
        if (!analysis::parseJson(line, req) || !req.isObj() ||
            !req.has("op") ||
            req.at("op").kind != analysis::Json::Kind::Str) {
            writeLine(fd, errorEvent("malformed request line"));
        } else if (req.at("op").str == "ping") {
            writeLine(fd, "{\"ok\": true}");
        } else if (req.at("op").str == "shutdown") {
            writeLine(fd, "{\"ok\": true}");
            return true;
        } else if (req.at("op").str == "sweep") {
            handleSweep(fd, req);
        } else {
            writeLine(fd, errorEvent("unknown op '" +
                                     req.at("op").str + "'"));
        }
        if (maxRequests > 0 && served >= maxRequests)
            return true;
    }
    return false;
}

/** Connect to @p path, retrying briefly so clients started alongside
 *  the daemon win the startup race; -1 when it never appears. */
int
connectTo(const std::string& path)
{
    const sockaddr_un addr = unixAddr(path);
    for (int attempt = 0; attempt < 100; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
}

/** Send one request and expect a single `{"ok":true}` reply. */
bool
simpleRequest(const std::string& socketPath, const std::string& op)
{
    FdGuard fd{connectTo(socketPath)};
    if (fd.fd < 0)
        return false;
    if (!writeLine(fd.fd, "{\"op\": \"" + op + "\"}"))
        return false;
    LineReader reader(fd.fd);
    std::string line;
    if (!reader.next(line))
        return false;
    analysis::Json reply;
    return analysis::parseJson(line, reply) && reply.isObj() &&
           reply.has("ok") &&
           reply.at("ok").kind == analysis::Json::Kind::Bool &&
           reply.at("ok").b;
}

} // namespace

void
serve(const ServeConfig& cfg)
{
    const sockaddr_un addr = unixAddr(cfg.socketPath);

    FdGuard listener{::socket(AF_UNIX, SOCK_STREAM, 0)};
    if (listener.fd < 0)
        fatal("cannot create socket: ", std::strerror(errno));
    ::unlink(cfg.socketPath.c_str());
    if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
        fatal("cannot bind '", cfg.socketPath,
              "': ", std::strerror(errno));
    if (::listen(listener.fd, 4) != 0)
        fatal("cannot listen on '", cfg.socketPath,
              "': ", std::strerror(errno));

    std::uint64_t served = 0;
    bool stop = false;
    while (!stop) {
        FdGuard conn{::accept(listener.fd, nullptr, nullptr)};
        if (conn.fd < 0) {
            if (errno == EINTR)
                continue;
            fatal("accept on '", cfg.socketPath,
                  "' failed: ", std::strerror(errno));
        }
        stop = handleConnection(conn.fd, served, cfg.maxRequests);
    }
    ::unlink(cfg.socketPath.c_str());
}

int
requestSweep(const std::string& socketPath,
             const std::string& requestJson, std::ostream& replies)
{
    FdGuard fd{connectTo(socketPath)};
    if (fd.fd < 0) {
        replies << errorEvent("cannot connect to '" + socketPath +
                              "'")
                << "\n";
        return 2;
    }
    if (!writeLine(fd.fd, requestJson)) {
        replies << errorEvent("connection lost while sending request")
                << "\n";
        return 2;
    }

    LineReader reader(fd.fd);
    std::string line;
    while (reader.next(line)) {
        replies << line << "\n";
        analysis::Json ev;
        if (!analysis::parseJson(line, ev) || !ev.isObj() ||
            !ev.has("event") ||
            ev.at("event").kind != analysis::Json::Kind::Str)
            continue;
        const std::string& kind = ev.at("event").str;
        if (kind == "error")
            return 2;
        if (kind == "done") {
            const bool ok = ev.has("ok") &&
                            ev.at("ok").kind ==
                                analysis::Json::Kind::Bool &&
                            ev.at("ok").b;
            return ok ? 0 : 1;
        }
    }
    replies << errorEvent("connection closed before done event")
            << "\n";
    return 2;
}

bool
ping(const std::string& socketPath)
{
    return simpleRequest(socketPath, "ping");
}

bool
shutdown(const std::string& socketPath)
{
    return simpleRequest(socketPath, "shutdown");
}

} // namespace service
} // namespace ts
