#include "driver/options.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace ts
{
namespace driver
{

namespace
{

/** Insert @p tag before the extension of @p path ("a.json" + "3" ->
 *  "a.3.json"; extensionless paths get the tag appended). */
std::string
suffixPath(const std::string& path, const std::string& tag)
{
    std::string out = path;
    const std::size_t dot = out.rfind('.');
    const std::string insert = "." + tag;
    if (dot == std::string::npos || dot == 0)
        out += insert;
    else
        out.insert(dot, insert);
    return out;
}

double
parseScale(const std::string& s, const char* what)
{
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || !(v > 0))
        fatal(what, " must be a positive number, got '", s, "'");
    return v;
}

std::uint64_t
parseSeed(const std::string& s, const char* what)
{
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        fatal(what, " must be a non-negative integer, got '", s, "'");
    return v;
}

int
parseLogLevel(const std::string& s, const char* what)
{
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 0 || v > 2)
        fatal(what, " must be 0, 1, or 2, got '", s, "'");
    return static_cast<int>(v);
}

unsigned
parseJobs(const std::string& s, const char* what)
{
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 1)
        fatal(what, " must be a positive integer, got '", s, "'");
    return static_cast<unsigned>(v);
}

std::string
parseProgress(const std::string& s, const char* what)
{
    if (s != "auto" && s != "always" && s != "never")
        fatal(what, " must be auto, always, or never, got '", s, "'");
    return s;
}

std::uint64_t
parseCount(const std::string& s, const char* what)
{
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        fatal(what, " must be a non-negative integer, got '", s, "'");
    return v;
}

StealPolicy
parseSteal(const std::string& s, const char* what)
{
    StealPolicy p = StealPolicy::None;
    if (!stealPolicyFromName(s, p))
        fatal(what, " must be none, steal-one, or steal-half, got '",
              s, "'");
    return p;
}

SchedPolicy
parseSched(const std::string& s, const char* what)
{
    SchedPolicy p = SchedPolicy::WorkAware;
    if (!schedPolicyFromName(s, p))
        fatal(what,
              " must be static, dyncount, workaware, or spatial, "
              "got '",
              s, "'");
    return p;
}

} // namespace

SuiteParams
RunOptions::suiteParams() const
{
    SuiteParams sp;
    sp.scale = scale;
    sp.seed = seed;
    return sp;
}

DeltaConfig
RunOptions::applyTo(DeltaConfig cfg) const
{
    if (!cfg.trace.enabled && !tracePath.empty())
        cfg.trace = nextTraceConfig(tracePath);
    if (cfg.statsJsonPath.empty())
        cfg.statsJsonPath = statsJsonPath;
    if (noFastForward)
        cfg.noFastForward = true;
    if (cfg.shards == 1)
        cfg.shards = shards;
    if (cfg.steal == StealPolicy::None)
        cfg.steal = steal;
    if (schedSet)
        cfg.policy = sched;
    if (cfg.timelineInterval == 0)
        cfg.timelineInterval = timelineInterval;
    if (cfg.timelineSeries.empty())
        cfg.timelineSeries = timelineSeries;
    if (hostProfile)
        cfg.hostProfile = true;
    if (cfg.flightRecorder == 0)
        cfg.flightRecorder = flightRecorder;
    return cfg;
}

bool
RunOptions::progressEnabled() const
{
    if (progress == "always")
        return true;
    if (progress == "never")
        return false;
    return ::isatty(fileno(stderr)) != 0;
}

void
RunOptions::applyLogLevel() const
{
    setLogVerbosity(logLevel);
}

RunOptions
RunOptions::fromEnv()
{
    // The single place in the tree that reads the environment: the
    // legacy TS_* variables remain supported as documented fallbacks
    // for the shared flags.
    RunOptions opt;
    const auto env = [](const char* name) -> std::string {
        const char* v = std::getenv(name);
        return v == nullptr ? std::string() : std::string(v);
    };

    opt.workloads = workloadsFromList(env("TS_WORKLOADS"));
    if (const std::string s = env("TS_SCALE"); !s.empty())
        opt.scale = parseScale(s, "TS_SCALE");
    if (const std::string s = env("TS_SEED"); !s.empty())
        opt.seed = parseSeed(s, "TS_SEED");
    if (const std::string s = env("TS_LOG"); !s.empty())
        opt.logLevel = parseLogLevel(s, "TS_LOG");
    opt.tracePath = env("TS_TRACE");
    opt.statsJsonPath = env("TS_STATS_JSON");
    opt.benchJsonDir = env("TS_BENCH_JSON");
    if (const std::string s = env("TS_NO_FAST_FORWARD"); !s.empty())
        opt.noFastForward = s != "0";
    if (const std::string s = env("TS_SHARDS"); !s.empty()) {
        const std::uint64_t v = parseCount(s, "TS_SHARDS");
        if (v < 1)
            fatal("TS_SHARDS must be at least 1, got '", s, "'");
        opt.shards = static_cast<std::uint32_t>(v);
    }
    if (const std::string s = env("TS_STEAL"); !s.empty())
        opt.steal = parseSteal(s, "TS_STEAL");
    if (const std::string s = env("TS_SCHED"); !s.empty()) {
        opt.sched = parseSched(s, "TS_SCHED");
        opt.schedSet = true;
    }
    if (const std::string s = env("TS_PROGRESS"); !s.empty())
        opt.progress = parseProgress(s, "TS_PROGRESS");
    if (const std::string s = env("TS_TIMELINE"); !s.empty())
        opt.timelineInterval = parseCount(s, "TS_TIMELINE");
    opt.timelineSeries = env("TS_TIMELINE_SERIES");
    if (const std::string s = env("TS_HOST_PROFILE"); !s.empty())
        opt.hostProfile = s != "0";
    if (const std::string s = env("TS_FLIGHT_RECORDER"); !s.empty())
        opt.flightRecorder = static_cast<std::size_t>(
            parseCount(s, "TS_FLIGHT_RECORDER"));
    return opt;
}

const char*
optionsHelp()
{
    return
        "shared run options (each falls back to its TS_* variable):\n"
        "  --workloads LIST   comma-separated workloads, 'all' = suite\n"
        "                     [TS_WORKLOADS]\n"
        "  --scale X          problem-size multiplier, > 0 [TS_SCALE]\n"
        "  --seed N           base RNG seed [TS_SEED]\n"
        "  --trace PATH       Perfetto trace output [TS_TRACE]\n"
        "  --stats-json PATH  flat StatSet JSON dump [TS_STATS_JSON]\n"
        "  --bench-json DIR   per-run wrapper dumps [TS_BENCH_JSON]\n"
        "  --log N            stderr verbosity 0|1|2 [TS_LOG]\n"
        "  --no-fast-forward  naive per-cycle ticking (bit-identical\n"
        "                     reference mode) [TS_NO_FAST_FORWARD]\n"
        "  --shards N         executor shards per run (host threads\n"
        "                     inside one simulation; bit-identical\n"
        "                     for every N) [TS_SHARDS]\n"
        "  --steal P          lane work stealing over the NoC:\n"
        "                     none|steal-one|steal-half (behaviour-\n"
        "                     relevant: part of run-cache keys)\n"
        "                     [TS_STEAL]\n"
        "  --sched P          scheduling policy override:\n"
        "                     static|dyncount|workaware|spatial\n"
        "                     (behaviour-relevant: part of run-cache\n"
        "                     keys) [TS_SCHED]\n"
        "  --progress[=]MODE  sweep progress lines: auto|always|never\n"
        "                     (auto = only when stderr is a TTY)\n"
        "                     [TS_PROGRESS]\n"
        "  --timeline N       sample a delta.timeline.* time series\n"
        "                     every N simulated cycles (0 = off)\n"
        "                     [TS_TIMELINE]\n"
        "  --timeline-series LIST\n"
        "                     probe-group subset out of\n"
        "                     lanes,ready,noc,dram (default: all)\n"
        "                     [TS_TIMELINE_SERIES]\n"
        "  --host-profile     attribute host wall time per component\n"
        "                     class and phase (sim.host.profile.*)\n"
        "                     [TS_HOST_PROFILE]\n"
        "  --flight-recorder N\n"
        "                     keep a ring of the last N sleep/wake/\n"
        "                     commit/event records, dumped on\n"
        "                     deadlock (0 = off) [TS_FLIGHT_RECORDER]\n"
        "  -j N, --jobs N     host worker threads (default: hardware\n"
        "                     concurrency)\n";
}

RunOptions
parseCommandLine(int& argc, char** argv, bool strict)
{
    RunOptions opt = RunOptions::fromEnv();

    std::vector<char*> keep;
    keep.reserve(static_cast<std::size_t>(argc));
    if (argc > 0)
        keep.push_back(argv[0]);

    int i = 1;
    const auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc)
            fatal("option '", flag, "' requires a value\n",
                  optionsHelp());
        return argv[++i];
    };

    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workloads") {
            opt.workloads = workloadsFromList(value("--workloads"));
        } else if (arg == "--scale") {
            opt.scale = parseScale(value("--scale"), "--scale");
        } else if (arg == "--seed") {
            opt.seed = parseSeed(value("--seed"), "--seed");
        } else if (arg == "--log") {
            opt.logLevel = parseLogLevel(value("--log"), "--log");
        } else if (arg == "--trace") {
            opt.tracePath = value("--trace");
        } else if (arg == "--stats-json") {
            opt.statsJsonPath = value("--stats-json");
        } else if (arg == "--bench-json") {
            opt.benchJsonDir = value("--bench-json");
        } else if (arg == "--no-fast-forward") {
            opt.noFastForward = true;
        } else if (arg == "--shards") {
            const std::uint64_t v =
                parseCount(value("--shards"), "--shards");
            if (v < 1)
                fatal("--shards must be at least 1");
            opt.shards = static_cast<std::uint32_t>(v);
        } else if (arg == "--steal") {
            opt.steal = parseSteal(value("--steal"), "--steal");
        } else if (arg == "--sched") {
            opt.sched = parseSched(value("--sched"), "--sched");
            opt.schedSet = true;
        } else if (arg == "--progress") {
            opt.progress =
                parseProgress(value("--progress"), "--progress");
        } else if (arg.rfind("--progress=", 0) == 0) {
            opt.progress = parseProgress(
                arg.substr(std::strlen("--progress=")), "--progress");
        } else if (arg == "--timeline") {
            opt.timelineInterval =
                parseCount(value("--timeline"), "--timeline");
        } else if (arg == "--timeline-series") {
            opt.timelineSeries = value("--timeline-series");
        } else if (arg == "--host-profile") {
            opt.hostProfile = true;
        } else if (arg == "--flight-recorder") {
            opt.flightRecorder = static_cast<std::size_t>(parseCount(
                value("--flight-recorder"), "--flight-recorder"));
        } else if (arg == "-j" || arg == "--jobs") {
            opt.jobs = parseJobs(value("--jobs"), "--jobs");
        } else if (strict && (arg == "--help" || arg == "-h")) {
            std::fputs(optionsHelp(), stdout);
            std::exit(0);
        } else if (strict && !arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "'\n", optionsHelp());
        } else {
            keep.push_back(argv[i]);
        }
    }

    argc = static_cast<int>(keep.size());
    for (std::size_t k = 0; k < keep.size(); ++k)
        argv[k] = keep[k];
    if (argc >= 0)
        argv[argc] = nullptr;

    opt.applyLogLevel();
    return opt;
}

RunOptions
parseCommandLineOrExit(int& argc, char** argv, bool strict)
{
    try {
        return parseCommandLine(argc, argv, strict);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "%s: %s\n",
                     argc > 0 ? argv[0] : "run", e.what());
        std::exit(2);
    }
}

trace::TracerConfig
nextTraceConfig(const std::string& base)
{
    trace::TracerConfig cfg;
    if (base.empty())
        return cfg;

    // One process may run many accelerator instances (the benches);
    // suffix each instance after the first so traces coexist.
    static std::atomic<unsigned> instance{0};
    const unsigned idx =
        instance.fetch_add(1, std::memory_order_relaxed);
    cfg.enabled = true;
    cfg.path = idx == 0 ? base : suffixPath(base, std::to_string(idx));
    return cfg;
}

trace::TracerConfig
traceConfigTagged(const std::string& base, const std::string& tag)
{
    trace::TracerConfig cfg;
    if (base.empty())
        return cfg;
    cfg.enabled = true;
    cfg.path = suffixPath(base, tag);
    return cfg;
}

} // namespace driver
} // namespace ts
