/**
 * @file
 * Value-semantic snapshots of simulator state (snapshot/fork warm
 * starts).
 *
 * A snapshot copies every piece of *mutable* state a component owns
 * into a ComponentSnap and restores it **in place on the same object
 * graph**: components, channels, and their wiring (pointers,
 * callbacks capturing `this`, observer lists) are never recreated, so
 * captured addresses stay valid across restore.  This is what makes
 * the scheme cheap — a restore is a handful of container assignments,
 * not a rebuild — and what defines its contract:
 *
 *  - every component overriding Ticked::saveState copies ALL state
 *    its tick()/busy()/reportStats() depend on (restored runs are
 *    CI-gated bit-identical to from-scratch runs, the same discipline
 *    as --no-fast-forward);
 *  - stored pointers may be copied by value only when they reference
 *    objects whose lifetime and address are stable across restore
 *    (other components, registry entries at or below the snapshot
 *    mark, the fabric's own port FIFOs);
 *  - the event queue must be empty at snapshot and restore time
 *    (callbacks are move-only and cannot be copied), which is always
 *    true post-configuration and at quiescence.
 *
 * See DESIGN.md §7 for the full ownership/copy contract.
 */

#ifndef TS_SIM_SNAPSHOT_HH
#define TS_SIM_SNAPSHOT_HH

#include <memory>

#include "sim/logging.hh"

namespace ts
{

/**
 * Base of every per-component state copy.  Components define a
 * private `struct Snap : ComponentSnap` holding value copies of their
 * mutable members; the simulator stores them type-erased.
 */
struct ComponentSnap
{
    virtual ~ComponentSnap() = default;
};

/** Snap of a component with no mutable state. */
struct EmptySnap final : ComponentSnap
{
};

/**
 * Downcast a ComponentSnap back to the concrete type its component
 * saved.  Pairing is by construction (a component only ever receives
 * the snap it produced, in registration order).
 */
template <typename Derived>
const Derived&
snapCast(const ComponentSnap& s)
{
    const Derived* d = dynamic_cast<const Derived*>(&s);
    TS_ASSERT(d != nullptr,
              "snapshot/component mismatch: a component was handed "
              "another component's state");
    return *d;
}

} // namespace ts

#endif // TS_SIM_SNAPSHOT_HH
