file(REMOVE_RECURSE
  "CMakeFiles/ts_cgra.dir/dfg.cc.o"
  "CMakeFiles/ts_cgra.dir/dfg.cc.o.d"
  "CMakeFiles/ts_cgra.dir/fabric.cc.o"
  "CMakeFiles/ts_cgra.dir/fabric.cc.o.d"
  "CMakeFiles/ts_cgra.dir/mapper.cc.o"
  "CMakeFiles/ts_cgra.dir/mapper.cc.o.d"
  "CMakeFiles/ts_cgra.dir/op.cc.o"
  "CMakeFiles/ts_cgra.dir/op.cc.o.d"
  "libts_cgra.a"
  "libts_cgra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_cgra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
