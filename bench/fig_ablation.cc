/**
 * @file
 * Fig-2: mechanism ablation.  Starting from the bulk-synchronous
 * static-parallel baseline, enable TaskStream's recovered structures
 * one at a time:
 *
 *   static     bulk-synchronous, owner-compute (the baseline)
 *   +dyn       dependence-driven dispatch, count-balanced lanes
 *   +work      work-aware lane choice (stream-annotation estimates)
 *   +pipe      pipelined inter-task dependence recovery
 *   +mcast     shared-read multicast recovery (= full Delta)
 *
 * Rows are per-workload speedups over the static baseline.  A thin
 * wrapper over the sweep engine: the workloads x ablation-ladder
 * grid runs on a host thread pool (-j N).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "driver/sweep.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

/** Sweep preset name -> table column header. */
constexpr std::pair<const char*, const char*> kSteps[] = {
    {"static", "static"}, {"dyn", "+dyn"},     {"work", "+work"},
    {"pipe", "+pipe"},    {"delta", "+mcast"},
};

void
printTable(const driver::SweepReport& report)
{
    const driver::RunOptions& opt = options();
    std::puts("");
    std::puts("Fig-2  Mechanism ablation: speedup over static-parallel "
              "as structures are recovered (8 lanes)");
    rule();
    std::printf("%-10s", "workload");
    for (const auto& [cfg, header] : kSteps)
        std::printf(" %8s", header);
    std::puts("");
    rule();
    std::vector<std::vector<double>> cols(std::size(kSteps));
    for (const Wk w : report.spec.workloads) {
        const driver::RunOutcome* base =
            report.find(w, "static", opt.seed, opt.scale);
        if (base == nullptr || !base->ok())
            continue;
        std::printf("%-10s", wkName(w));
        for (std::size_t i = 0; i < std::size(kSteps); ++i) {
            const driver::RunOutcome* r =
                report.find(w, kSteps[i].first, opt.seed, opt.scale);
            const double sp = r != nullptr && r->ok() && r->cycles > 0
                                  ? base->cycles / r->cycles
                                  : 0.0;
            cols[i].push_back(sp);
            std::printf(" %7.2fx", sp);
        }
        std::puts("");
    }
    rule();
    std::printf("%-10s", "geomean");
    for (const auto& col : cols)
        std::printf(" %7.2fx", geomean(col));
    std::puts("");
    std::puts("expected shape: each mechanism contributes where its "
              "structure exists: dynamic dispatch on DAGs, pipe on "
              "msort, mcast on shared-read workloads; with shallow "
              "task queues, count-based dispatch already captures "
              "most of the balancing win (see EXPERIMENTS.md)");
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        const driver::RunOptions opt =
            driver::parseCommandLine(argc, argv, /*strict=*/true);
        bench::options() = opt;

        driver::SweepSpec spec;
        spec.workloads = opt.workloads;
        spec.configs = driver::sweepConfigsFromList(
            "static,dyn,work,pipe,delta");
        spec.seeds = {opt.seed};
        spec.scales = {opt.scale};
        spec.baseline = "static";
        spec.jobs = opt.jobs;
        spec.benchJsonDir = opt.benchJsonDir;
        spec.tracePath = opt.tracePath;
        spec.noFastForward = opt.noFastForward;
        spec.progress = true;

        const driver::SweepReport report =
            driver::Sweep(std::move(spec)).run();
        printTable(report);
        return report.allOk() ? 0 : 1;
    } catch (const ts::FatalError& e) {
        std::cerr << "fig_ablation: " << e.what() << "\n";
        return 2;
    }
}
