/**
 * @file
 * Fundamental scalar types shared by every subsystem of the Delta /
 * TaskStream simulator.
 */

#ifndef TS_SIM_TYPES_HH
#define TS_SIM_TYPES_HH

#include <cstdint>
#include <cstring>

namespace ts
{

/** Simulated time, measured in accelerator clock cycles. */
using Tick = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/**
 * The machine word moved by streams and computed on by the fabric.
 *
 * All datapaths are 64 bits wide; a Word is reinterpreted as a signed
 * integer or an IEEE double depending on the opcode consuming it.
 */
using Word = std::uint64_t;

/** Number of bytes in a Word. */
constexpr unsigned wordBytes = 8;

/** Number of Words in a DRAM line (64-byte lines). */
constexpr unsigned lineWords = 8;

/** Number of bytes in a DRAM line. */
constexpr unsigned lineBytes = lineWords * wordBytes;

/** Reinterpret a Word as a signed 64-bit integer. */
inline std::int64_t
asInt(Word w)
{
    std::int64_t v;
    std::memcpy(&v, &w, sizeof(v));
    return v;
}

/** Reinterpret a signed 64-bit integer as a Word. */
inline Word
fromInt(std::int64_t v)
{
    Word w;
    std::memcpy(&w, &v, sizeof(w));
    return w;
}

/** Reinterpret a Word as an IEEE double. */
inline double
asDouble(Word w)
{
    double v;
    std::memcpy(&v, &w, sizeof(v));
    return v;
}

/** Reinterpret an IEEE double as a Word. */
inline Word
fromDouble(double v)
{
    Word w;
    std::memcpy(&w, &v, sizeof(w));
    return w;
}

/** Round an address down to its containing line. */
inline Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Integer ceiling division. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

} // namespace ts

#endif // TS_SIM_TYPES_HH
