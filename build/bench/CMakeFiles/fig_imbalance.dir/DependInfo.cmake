
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_imbalance.cc" "bench/CMakeFiles/fig_imbalance.dir/fig_imbalance.cc.o" "gcc" "bench/CMakeFiles/fig_imbalance.dir/fig_imbalance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ts_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/ts_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/ts_task.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ts_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ts_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ts_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cgra/CMakeFiles/ts_cgra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
