/**
 * @file
 * The host-visible task graph: instances plus *annotated* dependences.
 *
 * This is the programming interface the paper argues for: instead of
 * opaque "wait for task X" edges, every edge says *what structure* it
 * carries —
 *   Barrier:  plain completion ordering;
 *   Pipeline: the consumer elementwise-consumes a named output stream
 *             of the producer (hardware may forward it);
 * and shared-read groups say "these tasks all read this range".
 * The same graph runs unchanged on the static-parallel baseline,
 * which simply ignores the annotations.
 *
 * Since the dynamic-dependence refactor the graph is *live*: edges may
 * be added in any order (including to tasks that were created earlier,
 * or — on the dispatcher side — to tasks that are already running), a
 * task's pending successors can be transferred to another task, and
 * running tasks can submit whole `SpawnSet`s back to the dispatcher.
 * The only rejected shape is a cycle, detected online at edge-add time.
 */

#ifndef TS_TASK_TASK_GRAPH_HH
#define TS_TASK_TASK_GRAPH_HH

#include <algorithm>
#include <vector>

#include "task/task_types.hh"

namespace ts
{

/** Dependence kinds (the annotation is the contribution). */
enum class DepKind : std::uint8_t
{
    Barrier,
    Pipeline,
};

class CompletionHandle;

/**
 * A handle to a submitted task.  Implicitly convertible to its
 * `TaskId`, so existing `TaskId id = graph.addTask(...)` call sites
 * keep working; the handle form exists so edges can name tasks that
 * were submitted at any earlier point (the oneTBB dynamic-dependence
 * model), not just the immediately preceding ones.
 */
class TaskHandle
{
  public:
    TaskHandle() = default;
    TaskHandle(TaskId uid) : uid_(uid) {}

    operator TaskId() const { return uid_; }
    TaskId id() const { return uid_; }

    /** The completion event of this task (see CompletionHandle). */
    CompletionHandle completion() const;

  private:
    TaskId uid_ = 0;
};

/**
 * Names the *completion event* of a task.  Valid as an edge producer
 * for the task's whole lifetime — including after it started or
 * finished (an edge from a finished producer is immediately
 * satisfied).  Consumers, by contrast, must not have been dispatched
 * yet when an edge is added; the dispatcher enforces that.
 */
class CompletionHandle
{
  public:
    explicit CompletionHandle(TaskId uid) : uid_(uid) {}

    TaskId task() const { return uid_; }

  private:
    TaskId uid_ = 0;
};

inline CompletionHandle
TaskHandle::completion() const
{
    return CompletionHandle{uid_};
}

/** An annotated dependence edge. */
struct DepEdge
{
    TaskId producer = 0;
    TaskId consumer = 0;
    DepKind kind = DepKind::Barrier;
    std::uint8_t producerPort = 0; ///< Pipeline: forwarded output port
    std::uint8_t consumerPort = 0; ///< Pipeline: consuming input port
};

/**
 * Tasks and edges a *running* task submits back to the dispatcher
 * (built inside a builtin body's `spawn` hook, shipped to the
 * dispatcher in one TaskSpawn NoC message).  Edge endpoints are
 * signed: a non-negative value names an existing task by uid (it may
 * be running or even complete when used as a producer), a negative
 * value `-(k+1)` names `tasks[k]` of this set.
 */
struct SpawnSet
{
    static constexpr std::int64_t kNoTransfer = -1;

    struct Task
    {
        TaskTypeId type = 0;
        std::vector<StreamDesc> inputs;
        std::vector<WriteDesc> outputs;
    };

    struct Edge
    {
        std::int64_t producer = 0;
        std::int64_t consumer = 0;
        DepKind kind = DepKind::Barrier;
        std::uint8_t producerPort = 0;
        std::uint8_t consumerPort = 0;
    };

    std::vector<Task> tasks;
    std::vector<Edge> edges;

    /**
     * Local index of the task that inherits the spawner's pending
     * successors (successor transfer on early finish, the oneTBB
     * `transfer_successors_to` semantics), or kNoTransfer.
     */
    std::int64_t transferTo = kNoTransfer;

    /** Add a task; returns its local reference (negative). */
    std::int64_t
    add(TaskTypeId type, std::vector<StreamDesc> inputs,
        std::vector<WriteDesc> outputs)
    {
        tasks.push_back(Task{type, std::move(inputs), std::move(outputs)});
        return -static_cast<std::int64_t>(tasks.size());
    }

    void
    barrier(std::int64_t producer, std::int64_t consumer)
    {
        edges.push_back(Edge{producer, consumer, DepKind::Barrier, 0, 0});
    }

    void
    pipeline(std::int64_t producer, std::uint8_t producerPort,
             std::int64_t consumer, std::uint8_t consumerPort)
    {
        edges.push_back(Edge{producer, consumer, DepKind::Pipeline,
                             producerPort, consumerPort});
    }

    bool
    empty() const
    {
        return tasks.empty() && edges.empty() &&
               transferTo == kNoTransfer;
    }
};

/** A shared-read group over a contiguous DRAM range. */
struct SharedGroup
{
    std::uint32_t id = 0;
    Addr rangeBase = 0;       ///< line-aligned byte address
    std::uint64_t words = 0;  ///< range length in words
    std::vector<TaskId> members;
};

/** Measured execution span of one task (dispatcher-recorded). */
struct TaskSpan
{
    TaskId uid = 0;
    Tick start = 0;       ///< cycle the lane began executing
    Tick end = 0;         ///< cycle the dispatcher saw completion
    std::int32_t lane = -1;

    Tick service() const { return end >= start ? end - start : 0; }
};

/** Result of dependence-weighted critical-path analysis. */
struct CritPathResult
{
    /** Longest dependence-weighted path through the measured spans
     *  (a lower bound on any schedule of this graph on these
     *  service times). */
    Tick criticalPathCycles = 0;

    /** Sum of all measured service times (serial execution cost). */
    Tick serialCycles = 0;

    /** Tasks on the critical path, producer-to-consumer order. */
    std::vector<TaskId> path;

    /**
     * Lower bound on makespan for @p lanes lanes:
     * max(critical path, serial work / lanes).
     */
    Tick
    boundCycles(std::uint32_t lanes) const
    {
        if (lanes == 0)
            return criticalPathCycles;
        const Tick balanced = (serialCycles + lanes - 1) / lanes;
        return std::max(criticalPathCycles, balanced);
    }
};

/** Host-side container for a workload's tasks. */
class TaskGraph
{
  public:
    /** Add a task; edges may name it in either direction later. */
    TaskHandle addTask(TaskTypeId type, std::vector<StreamDesc> inputs,
                       std::vector<WriteDesc> outputs);

    /** The completion handle of an existing task. */
    CompletionHandle completion(TaskId task) const;

    /**
     * Add a completion-ordering edge.  Any producer/consumer pair is
     * accepted — edges no longer need to follow creation order — but
     * an edge that would close a cycle is rejected (panic).
     */
    void addBarrier(TaskId producer, TaskId consumer);
    void addBarrier(const CompletionHandle& producer, TaskId consumer);

    /**
     * Add a pipelined dependence: @p consumer's input port
     * @p consumerPort elementwise-consumes @p producer's output port
     * @p producerPort.  The consumer's input descriptor must describe
     * the memory fallback (used by the baseline, and by Delta when
     * the edge cannot be activated).
     */
    void addPipeline(TaskId producer, std::uint8_t producerPort,
                     TaskId consumer, std::uint8_t consumerPort);

    /**
     * Re-hang every pending successor edge of @p from onto @p to
     * (successor transfer).  Pipeline edges become Barrier edges
     * across the transfer — the forwarded stream identity does not
     * survive a producer change.
     */
    void transferSuccessors(TaskId from, TaskId to);

    /** Create a shared-read group over [base, base + words*8). */
    std::uint32_t addSharedGroup(Addr rangeBase, std::uint64_t words);

    /**
     * Annotate @p task's input @p port as reading within group
     * @p group; its descriptor's dataBase must lie in the range.
     */
    void setSharedInput(TaskId task, std::uint32_t port,
                        std::uint32_t group);

    const std::vector<TaskInstance>& tasks() const { return tasks_; }
    const std::vector<DepEdge>& edges() const { return edges_; }
    const std::vector<SharedGroup>& groups() const { return groups_; }

    TaskInstance& task(TaskId id) { return tasks_.at(id); }
    const TaskInstance& task(TaskId id) const { return tasks_.at(id); }

    std::size_t numTasks() const { return tasks_.size(); }

    /**
     * A topological order of the tasks (Kahn, uid tie-break — stable
     * for a given graph).  Panics if the graph has a cycle, which the
     * online edge-add check should have made impossible.
     */
    std::vector<TaskId> topoOrder() const;

    /** Validate structural invariants (acyclicity, ranges). */
    void validate() const;

    /**
     * Dependence-weighted longest path over this graph, weighting
     * each task by its measured service time in @p spans (indexed by
     * uid; tasks missing a span weigh zero).  Processes tasks in
     * topological order, so edges may point in either uid direction.
     */
    CritPathResult
    criticalPath(const std::vector<TaskSpan>& spans) const;

  private:
    /** True when a path @p from ->* @p to exists over current edges. */
    bool reaches(TaskId from, TaskId to) const;

    /** Reject @p producer -> @p consumer if it would close a cycle. */
    void checkAcyclicEdge(TaskId producer, TaskId consumer) const;

    std::vector<TaskInstance> tasks_;
    std::vector<DepEdge> edges_;
    std::vector<SharedGroup> groups_;

    /** Out-adjacency (edge indices) maintained for cycle checks. */
    std::vector<std::vector<std::uint32_t>> outEdges_;

    /** No "back" edge (producer >= consumer) exists yet: while true,
     *  forward edge additions cannot close a cycle and the online
     *  DFS is skipped entirely (the common, statically-built case). */
    bool creationOrdered_ = true;
};

} // namespace ts

#endif // TS_TASK_TASK_GRAPH_HH
