#include "workloads/cholesky.hh"

#include <cmath>
#include <set>

#include "workloads/dense_util.hh"

namespace ts
{

namespace
{

/** Cycles-per-flop of the coarse-grained tile kernels. */
constexpr double kCpf = 0.5;

} // namespace

void
CholeskyWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);
    const std::uint64_t b = p_.tileSize;
    const std::uint64_t T = p_.tiles;
    const std::uint64_t n = T * b;

    // --- SPD matrix: A = 0.1 * M M^T + n * I ---------------------------
    mat_ = img.allocWords(n * n);
    std::vector<double> m(n * n);
    for (auto& v : m)
        v = rng.uniformReal(0.0, 1.0);
    for (std::uint64_t r = 0; r < n; ++r) {
        for (std::uint64_t c = 0; c < n; ++c) {
            double acc = 0.0;
            for (std::uint64_t k = 0; k < n; ++k)
                acc += m[r * n + k] * m[c * n + k];
            double v = 0.1 * acc;
            if (r == c)
                v += static_cast<double>(n);
            matSet(img, mat_, n, r, c, v);
        }
    }

    // --- golden: unblocked Cholesky-Crout of a copy ---------------------
    std::vector<double> a(n * n);
    for (std::uint64_t i = 0; i < n * n; ++i)
        a[i] = img.readDouble(mat_ + i * wordBytes);
    expected_.assign(n * n, 0.0);
    for (std::uint64_t j = 0; j < n; ++j) {
        double d = a[j * n + j];
        for (std::uint64_t k = 0; k < j; ++k)
            d -= expected_[j * n + k] * expected_[j * n + k];
        expected_[j * n + j] = std::sqrt(d);
        for (std::uint64_t i = j + 1; i < n; ++i) {
            double v = a[i * n + j];
            for (std::uint64_t k = 0; k < j; ++k)
                v -= expected_[i * n + k] * expected_[j * n + k];
            expected_[i * n + j] = v / expected_[j * n + j];
        }
    }

    // --- builtin tile kernels -------------------------------------------
    const Addr mat = mat_;
    auto cyclesFor = [b](double flops) {
        return static_cast<std::uint64_t>(flops * kCpf) + b;
    };

    BuiltinBody potrf;
    potrf.apply = [mat, n, b](MemImage& im, const TaskInstance& inst) {
        const Addr tile = inst.outputs.at(0).base;
        const std::uint64_t r0 = (tile - mat) / wordBytes / n;
        const std::uint64_t c0 = (tile - mat) / wordBytes % n;
        for (std::uint64_t j = 0; j < b; ++j) {
            double d = matGet(im, mat, n, r0 + j, c0 + j);
            for (std::uint64_t k = 0; k < j; ++k) {
                const double l = matGet(im, mat, n, r0 + j, c0 + k);
                d -= l * l;
            }
            matSet(im, mat, n, r0 + j, c0 + j, std::sqrt(d));
            for (std::uint64_t i = j + 1; i < b; ++i) {
                double v = matGet(im, mat, n, r0 + i, c0 + j);
                for (std::uint64_t k = 0; k < j; ++k) {
                    v -= matGet(im, mat, n, r0 + i, c0 + k) *
                         matGet(im, mat, n, r0 + j, c0 + k);
                }
                matSet(im, mat, n, r0 + i, c0 + j,
                       v / matGet(im, mat, n, r0 + j, c0 + j));
            }
        }
    };
    potrf.cycles = [b, cyclesFor](const MemImage&,
                                  const TaskInstance&) {
        return cyclesFor(static_cast<double>(b * b * b) / 3.0);
    };
    potrf.outputWords = [b](const MemImage&, const TaskInstance&) {
        return b * b;
    };

    BuiltinBody trsm;
    trsm.apply = [mat, n, b](MemImage& im, const TaskInstance& inst) {
        // X := X * L_kk^{-T}; inputs[1] is the diagonal tile.
        const Addr xTile = inst.outputs.at(0).base;
        const Addr lTile = inst.inputs.at(1).dataBase;
        const std::uint64_t xr = (xTile - mat) / wordBytes / n;
        const std::uint64_t xc = (xTile - mat) / wordBytes % n;
        const std::uint64_t lr = (lTile - mat) / wordBytes / n;
        const std::uint64_t lc = (lTile - mat) / wordBytes % n;
        for (std::uint64_t r = 0; r < b; ++r) {
            for (std::uint64_t c = 0; c < b; ++c) {
                double v = matGet(im, mat, n, xr + r, xc + c);
                for (std::uint64_t k = 0; k < c; ++k) {
                    v -= matGet(im, mat, n, xr + r, xc + k) *
                         matGet(im, mat, n, lr + c, lc + k);
                }
                matSet(im, mat, n, xr + r, xc + c,
                       v / matGet(im, mat, n, lr + c, lc + c));
            }
        }
    };
    trsm.cycles = [b, cyclesFor](const MemImage&, const TaskInstance&) {
        return cyclesFor(static_cast<double>(b * b * b));
    };
    trsm.outputWords = potrf.outputWords;

    BuiltinBody gemm; // also covers syrk (j == i)
    gemm.apply = [mat, n, b](MemImage& im, const TaskInstance& inst) {
        // C -= A * B^T ; inputs: 0=C, 1=A=(i,k), 2=B=(j,k).
        const Addr cT = inst.outputs.at(0).base;
        const Addr aT = inst.inputs.at(1).dataBase;
        const Addr bT = inst.inputs.at(2).dataBase;
        const std::uint64_t cr = (cT - mat) / wordBytes / n;
        const std::uint64_t cc = (cT - mat) / wordBytes % n;
        const std::uint64_t ar = (aT - mat) / wordBytes / n;
        const std::uint64_t ac = (aT - mat) / wordBytes % n;
        const std::uint64_t br = (bT - mat) / wordBytes / n;
        const std::uint64_t bc = (bT - mat) / wordBytes % n;
        for (std::uint64_t r = 0; r < b; ++r) {
            for (std::uint64_t c = 0; c < b; ++c) {
                double v = matGet(im, mat, n, cr + r, cc + c);
                for (std::uint64_t k = 0; k < b; ++k) {
                    v -= matGet(im, mat, n, ar + r, ac + k) *
                         matGet(im, mat, n, br + c, bc + k);
                }
                matSet(im, mat, n, cr + r, cc + c, v);
            }
        }
    };
    gemm.cycles = [b, cyclesFor](const MemImage&, const TaskInstance&) {
        return cyclesFor(2.0 * static_cast<double>(b * b * b));
    };
    gemm.outputWords = potrf.outputWords;

    TaskTypeRegistry& reg = delta.registry();
    const TaskTypeId potrfTy =
        reg.addBuiltinType("potrf", std::move(potrf));
    const TaskTypeId trsmTy = reg.addBuiltinType("trsm", std::move(trsm));
    const TaskTypeId gemmTy = reg.addBuiltinType("gemm", std::move(gemm));
    const double b3 = static_cast<double>(b * b * b);
    reg.setWorkFn(potrfTy, [b3](const MemImage&, const TaskInstance&) {
        return b3 / 3.0;
    });
    reg.setWorkFn(trsmTy, [b3](const MemImage&, const TaskInstance&) {
        return b3;
    });
    reg.setWorkFn(gemmTy, [b3](const MemImage&, const TaskInstance&) {
        return 2.0 * b3;
    });

    // --- task DAG ---------------------------------------------------------
    std::vector<std::int64_t> lastWriter(T * T, -1);
    auto addDeps = [&](TaskId id,
                       std::initializer_list<std::uint64_t> tilesRead) {
        std::set<TaskId> deps;
        for (const std::uint64_t t : tilesRead) {
            if (lastWriter[t] >= 0)
                deps.insert(static_cast<TaskId>(lastWriter[t]));
        }
        for (const TaskId d : deps)
            graph.addBarrier(d, id);
    };
    auto tidx = [T](std::uint64_t i, std::uint64_t j) {
        return i * T + j;
    };

    for (std::uint64_t k = 0; k < T; ++k) {
        WriteDesc outKK;
        outKK.base = matAddr(mat, n, k * b, k * b);
        const TaskId pk = graph.addTask(
            potrfTy, {tileStream(mat, n, b, k, k)}, {outKK});
        addDeps(pk, {tidx(k, k)});
        lastWriter[tidx(k, k)] = pk;

        for (std::uint64_t i = k + 1; i < T; ++i) {
            WriteDesc outIK;
            outIK.base = matAddr(mat, n, i * b, k * b);
            const TaskId tk = graph.addTask(
                trsmTy,
                {tileStream(mat, n, b, i, k),
                 tileStream(mat, n, b, k, k)},
                {outIK});
            addDeps(tk, {tidx(i, k), tidx(k, k)});
            lastWriter[tidx(i, k)] = tk;
        }
        for (std::uint64_t i = k + 1; i < T; ++i) {
            for (std::uint64_t j = k + 1; j <= i; ++j) {
                WriteDesc outIJ;
                outIJ.base = matAddr(mat, n, i * b, j * b);
                const TaskId gk = graph.addTask(
                    gemmTy,
                    {tileStream(mat, n, b, i, j),
                     tileStream(mat, n, b, i, k),
                     tileStream(mat, n, b, j, k)},
                    {outIJ});
                addDeps(gk, {tidx(i, j), tidx(i, k), tidx(j, k)});
                lastWriter[tidx(i, j)] = gk;
            }
        }
    }
}

bool
CholeskyWorkload::check(const MemImage& img) const
{
    const std::uint64_t n = p_.tiles * p_.tileSize;
    for (std::uint64_t r = 0; r < n; ++r) {
        for (std::uint64_t c = 0; c <= r; ++c) {
            const double got = matGet(img, mat_, n, r, c);
            const double want = expected_[r * n + c];
            if (std::abs(got - want) >
                1e-6 * std::max(1.0, std::abs(want))) {
                warn("cholesky mismatch at (", r, ",", c, "): got ",
                     got, " want ", want);
                return false;
            }
        }
    }
    return true;
}

} // namespace ts
