/**
 * @file
 * Building a custom workload from scratch: a sorted-set similarity
 * kernel (pairwise intersection sizes between a query set and many
 * candidate sets) using the fabric's data-dependent IsectCount unit,
 * shared-read multicast of the query set, and a reduction task.
 *
 * This is the template to copy when porting your own task-parallel
 * kernel onto Delta.
 *
 *   $ ./build/examples/custom_kernel
 */

#include <algorithm>
#include <cstdio>
#include <set>

#include "driver/run_one.hh"
#include "sim/rng.hh"

using namespace ts;

int
main(int argc, char** argv)
{
    const driver::RunOptions opt =
        driver::parseCommandLineOrExit(argc, argv);

    const std::size_t nCand = 64, querySize = 256;
    std::vector<std::int64_t> expected(nCand);
    std::int64_t expectBest = 0;
    Addr counts = 0, bestAddr = 0;

    driver::RunSpec spec;
    spec.cfg = DeltaConfig::delta(8);
    spec.tag = "custom_kernel";

    spec.build = [&](Delta& delta, TaskGraph& graph) {
        MemImage& img = delta.image();
        Rng rng(2026);

        // --- data: one query set, many candidate sets (sorted ids) ---
        auto sampleSorted = [&](std::size_t n) {
            std::set<std::int64_t> s;
            while (s.size() < n)
                s.insert(rng.uniformInt(0, 1 << 14));
            return std::vector<std::int64_t>(s.begin(), s.end());
        };

        const auto query = sampleSorted(querySize);
        const Addr queryAddr = img.allocWords(querySize);
        for (std::size_t i = 0; i < querySize; ++i)
            img.writeInt(queryAddr + i * wordBytes, query[i]);

        std::vector<Addr> candAddr(nCand);
        std::vector<std::size_t> candLen(nCand);
        for (std::size_t c = 0; c < nCand; ++c) {
            // Zipf-skewed candidate sizes: heavy tails stress
            // balancing.
            const auto cand =
                sampleSorted(16 + 24 * (rng.zipf(64, 1.1) + 1));
            candLen[c] = cand.size();
            candAddr[c] = img.allocWords(cand.size());
            for (std::size_t i = 0; i < cand.size(); ++i)
                img.writeInt(candAddr[c] + i * wordBytes, cand[i]);
            expected[c] = static_cast<std::int64_t>(std::count_if(
                cand.begin(), cand.end(), [&](std::int64_t k) {
                    return std::binary_search(query.begin(),
                                              query.end(), k);
                }));
        }

        // --- task types ---------------------------------------------
        // similarity(candidate, query) -> |candidate ∩ query|
        auto sim = std::make_unique<Dfg>("similarity");
        const auto candIn = sim->addInput();
        const auto queryIn = sim->addInput();
        sim->addOutput(sim->add(Op::IsectCount, Operand::ref(candIn),
                                Operand::ref(queryIn)));
        const TaskTypeId simTy =
            delta.registry().addDfgType("similarity", std::move(sim));

        // best(counts) -> max similarity (a second, dependent task).
        auto best = std::make_unique<Dfg>("best");
        const auto cIn = best->addInput();
        best->addOutput(best->add(Op::AccMax, Operand::ref(cIn)));
        const TaskTypeId bestTy =
            delta.registry().addDfgType("best", std::move(best));

        // --- task graph ---------------------------------------------
        counts = img.allocWords(nCand);
        bestAddr = img.allocWords(1);

        const auto group = graph.addSharedGroup(queryAddr, querySize);
        std::vector<TaskId> tasks;
        for (std::size_t c = 0; c < nCand; ++c) {
            WriteDesc out;
            out.base = counts + c * wordBytes;
            const TaskId id = graph.addTask(
                simTy,
                {StreamDesc::linear(Space::Dram, candAddr[c],
                                    candLen[c]),
                 StreamDesc::linear(Space::Dram, queryAddr,
                                    querySize)},
                {out});
            graph.setSharedInput(id, 1, group);
            tasks.push_back(id);
        }
        WriteDesc bestOut;
        bestOut.base = bestAddr;
        const TaskId reduce = graph.addTask(
            bestTy, {StreamDesc::linear(Space::Dram, counts, nCand)},
            {bestOut});
        for (const TaskId t : tasks)
            graph.addBarrier(t, reduce);
    };

    std::int64_t gotBest = 0;
    std::uint64_t groupsFired = 0;
    spec.check = [&](Delta& delta) {
        MemImage& img = delta.image();
        groupsFired = delta.dispatcher().groupsFired();
        std::size_t errors = 0;
        for (std::size_t c = 0; c < nCand; ++c) {
            if (img.readInt(counts + c * wordBytes) != expected[c])
                ++errors;
            expectBest = std::max(expectBest, expected[c]);
        }
        gotBest = img.readInt(bestAddr);
        if (gotBest != expectBest)
            ++errors;
        return errors == 0;
    };

    // --- run & check ------------------------------------------------
    const driver::RunResult r = driver::runOne(opt, spec);

    std::printf("custom_kernel: %zu similarity tasks + 1 reduction, "
                "%s\n",
                nCand, r.correct ? "PASS" : "FAIL");
    std::printf("  best similarity   : %lld (expected %lld)\n",
                static_cast<long long>(gotBest),
                static_cast<long long>(expectBest));
    std::printf("  cycles            : %.0f\n", r.cycles);
    std::printf("  multicast groups  : %llu fired, %.0f fill lines\n",
                static_cast<unsigned long long>(groupsFired),
                r.stats.get("dispatcher.fillLines"));
    return r.correct ? 0 : 1;
}
