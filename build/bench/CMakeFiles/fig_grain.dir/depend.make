# Empty dependencies file for fig_grain.
# This may be replaced when dependencies are built.
