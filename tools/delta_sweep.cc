/**
 * @file
 * delta-sweep: the single CLI entry point for running grids of
 * simulations on a host thread pool (src/driver/sweep.hh), either
 * directly, against a content-addressed run cache, or through the
 * sweep daemon (src/service/sweep_service.hh).
 *
 * A grid is the cross product workloads x configs x seeds x scales.
 * Each point runs in full isolation; results aggregate
 * deterministically (bit-identical between -j 1 and -j N, and between
 * cold and warm cache passes).
 *
 * Modes:
 *   (default)         expand the grid and run it locally
 *   --dry-run         print each point's tag, cache key, and
 *                     predicted hit/miss; execute nothing
 *   --serve SOCK      daemon: serve sweep requests on a Unix socket
 *   --connect SOCK    client: send one request to a daemon; the grid
 *                     is described with --set/--grid only, so exactly
 *                     what is sent is what was typed
 *
 * Per-run StatSets land in --bench-json DIR as `<tag>.json` in the
 * wrapper shape `tools/delta-report --baseline` ingests.  Exit code:
 * 0 when every run completed and passed its check, 1 otherwise, 2 on
 * usage/protocol errors.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/json.hh"
#include "cache/run_cache.hh"
#include "driver/grid.hh"
#include "service/sweep_service.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace
{

using namespace ts;

[[noreturn]] void
usage(int code)
{
    std::FILE* os = code == 0 ? stdout : stderr;
    std::fputs(
        "usage: delta-sweep [grid options] [shared options]\n"
        "grid options:\n"
        "  --configs LIST    comma-separated presets (default\n"
        "                    'static,delta'; valid: static, dyn,\n"
        "                    work, work-steal, pipe, delta, spatial)\n"
        "  --seeds LIST      comma-separated seeds (default: --seed)\n"
        "  --scales LIST     comma-separated scales (default: --scale)\n"
        "  --lanes N         lanes for every config (default 8)\n"
        "  --baseline NAME   speedup baseline (default: first config)\n"
        "  --out PATH        aggregate JSON report\n"
        "  --grid FILE       `key = value` grid file\n"
        "  --set KEY=VALUE   one grid-file setting inline\n"
        "  --list-grid-keys  print the full `key = value` vocabulary\n"
        "                    (every key with its accepted values)\n"
        "                    and exit\n"
        "  --quiet           no per-run progress on stderr\n"
        "cache options:\n"
        "  --cache DIR       content-addressed run cache: consult\n"
        "                    before running, publish after\n"
        "  --cache-cap BYTES cache size budget (K/M/G suffixes ok)\n"
        "  --no-snapshot-fork  fresh Delta per point (differential\n"
        "                    check of snapshot/fork warm starts)\n"
        "  --dry-run         print tag, cache key, and predicted\n"
        "                    hit/miss per point; run nothing\n"
        "service options:\n"
        "  --serve SOCK      serve sweep requests on a Unix socket\n"
        "  --connect SOCK    send one request to a serving daemon;\n"
        "                    combine with --set/--grid (sweep),\n"
        "                    --ping, --shutdown, --status,\n"
        "                    --metrics, or --watch\n"
        "  --status          one live-telemetry snapshot: uptime,\n"
        "                    cells done/in flight, per-worker cells,\n"
        "                    cache outcomes, ETA\n"
        "  --metrics         Prometheus text exposition (ts_sweep_*)\n"
        "                    on stdout, for scrapers\n"
        "  --watch           poll status about once a second until\n"
        "                    the in-flight sweep finishes\n",
        os);
    std::fputs(ts::driver::optionsHelp(), os);
    std::exit(code);
}

/** Split `KEY=VALUE` (fatal without '='). */
std::pair<std::string, std::string>
splitSetting(const std::string& arg)
{
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("--set expects KEY=VALUE, got '", arg, "'");
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/**
 * Read a grid file as raw key/value pairs (same syntax as
 * driver::loadGridFile) for forwarding to a daemon.
 */
std::vector<std::pair<std::string, std::string>>
readGridKvs(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open grid file '", path, "'");
    std::vector<std::pair<std::string, std::string>> kvs;
    std::string line;
    std::size_t lineno = 0;
    const auto trim = [](std::string s) {
        const auto tb = s.find_first_not_of(" \t\r");
        const auto te = s.find_last_not_of(" \t\r");
        return tb == std::string::npos ? std::string()
                                       : s.substr(tb, te - tb + 1);
    };
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("grid file ", path, ":", lineno,
                  ": expected `key = value`, got '", line, "'");
        kvs.emplace_back(trim(line.substr(0, eq)),
                         trim(line.substr(eq + 1)));
    }
    return kvs;
}

/** One-line summary of a parsed status reply's "status" object. */
std::string
statusSummary(const analysis::Json& st)
{
    std::ostringstream os;
    const auto num = [&st](const char* key) {
        return static_cast<unsigned long long>(st.at(key).num);
    };
    if (st.at("sweeping").b) {
        os << "sweeping: " << num("done") << "/" << num("runs")
           << " cells done, " << num("inflight") << " in flight";
        if (num("hits") + num("misses") > 0)
            os << ", cache " << num("hits") << "/"
               << (num("hits") + num("misses")) << " hits";
        const double eta = st.at("etaSec").num;
        if (eta > 0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, ", ETA %.0fs", eta);
            os << buf;
        }
    } else if (num("runs") > 0) {
        os << "idle (last sweep: " << num("done") << "/"
           << num("runs") << " cells)";
    } else {
        os << "idle";
    }
    return os.str();
}

/** --status: one pretty snapshot of the daemon's live telemetry. */
int
statusMain(const std::string& sock)
{
    const std::string line = service::status(sock);
    analysis::Json reply;
    if (line.empty() || !analysis::parseJson(line, reply)) {
        std::fprintf(stderr, "delta-sweep: no daemon at %s\n",
                     sock.c_str());
        return 2;
    }
    const analysis::Json& st = reply.at("status");
    std::printf("daemon: up %.1fs, %llu requests served\n",
                st.at("uptimeSec").num,
                static_cast<unsigned long long>(st.at("served").num));
    std::printf("%s\n", statusSummary(st).c_str());
    for (const analysis::Json& w : st.at("workers").arr)
        std::printf("  worker %llu: %s\n",
                    static_cast<unsigned long long>(
                        w.at("worker").num),
                    w.at("cell").str.c_str());
    return 0;
}

/** --watch: poll status about once a second until the sweep ends. */
int
watchMain(const std::string& sock)
{
    const bool tty = isatty(fileno(stdout)) != 0;
    for (;;) {
        const std::string line = service::status(sock);
        analysis::Json reply;
        if (line.empty() || !analysis::parseJson(line, reply)) {
            if (tty)
                std::printf("\n");
            std::fprintf(stderr, "delta-sweep: no daemon at %s\n",
                         sock.c_str());
            return 2;
        }
        const analysis::Json& st = reply.at("status");
        const std::string summary = statusSummary(st);
        if (tty) {
            // Redraw in place; \033[K clears the previous line's tail.
            std::printf("\r\033[K%s", summary.c_str());
            std::fflush(stdout);
        } else {
            std::printf("%s\n", summary.c_str());
        }
        if (!st.at("sweeping").b) {
            if (tty)
                std::printf("\n");
            return 0;
        }
        std::this_thread::sleep_for(std::chrono::seconds(1));
    }
}

/**
 * Client mode: everything after --connect is forwarded verbatim, so
 * shared flags are rejected here (use `--set key=value` instead) —
 * what was typed is exactly what the daemon receives.
 */
int
clientMain(int argc, char** argv)
{
    std::string sock;
    bool doPing = false;
    bool doShutdown = false;
    bool doStatus = false;
    bool doMetrics = false;
    bool doWatch = false;
    std::map<std::string, std::string> settings;

    // Validation scratch: catches bad keys/values client-side with
    // the same messages a local run would give.
    driver::RunOptions scratchOpt;
    driver::GridSettings scratchGrid;
    const auto record = [&](const std::string& key,
                            const std::string& value) {
        driver::applyGridKey(key, value, scratchOpt, scratchGrid);
        settings[key] = value;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option '", arg, "' requires a value");
            return argv[++i];
        };
        if (arg == "--connect") {
            sock = value();
        } else if (arg == "--ping") {
            doPing = true;
        } else if (arg == "--shutdown") {
            doShutdown = true;
        } else if (arg == "--status") {
            doStatus = true;
        } else if (arg == "--metrics") {
            doMetrics = true;
        } else if (arg == "--watch") {
            doWatch = true;
        } else if (arg == "--set") {
            const auto [k, v] = splitSetting(value());
            record(k, v);
        } else if (arg == "--grid") {
            for (const auto& [k, v] : readGridKvs(value()))
                record(k, v);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            fatal("option '", arg, "' is not valid with --connect; "
                  "describe the sweep with --set KEY=VALUE or "
                  "--grid FILE");
        }
    }

    if (doPing) {
        if (service::ping(sock)) {
            std::puts("ok");
            return 0;
        }
        std::fprintf(stderr, "delta-sweep: no daemon at %s\n",
                     sock.c_str());
        return 2;
    }
    if (doShutdown) {
        if (service::shutdown(sock))
            return 0;
        std::fprintf(stderr, "delta-sweep: no daemon at %s\n",
                     sock.c_str());
        return 2;
    }
    if (doStatus)
        return statusMain(sock);
    if (doWatch)
        return watchMain(sock);
    if (doMetrics) {
        const std::string text = service::metrics(sock);
        if (text.empty()) {
            std::fprintf(stderr, "delta-sweep: no daemon at %s\n",
                         sock.c_str());
            return 2;
        }
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    if (settings.empty())
        fatal("--connect needs a request: --set/--grid, --ping, "
              "--shutdown, --status, --metrics, or --watch");

    std::ostringstream req;
    req << "{\"op\": \"sweep\", \"grid\": {";
    bool first = true;
    for (const auto& [k, v] : settings) {
        if (!first)
            req << ", ";
        first = false;
        req << "\"" << jsonEscape(k) << "\": \"" << jsonEscape(v)
            << "\"";
    }
    req << "}}";
    return service::requestSweep(sock, req.str(), std::cout);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ts;

    try {
        // Client mode bypasses shared-flag parsing entirely: nothing
        // may be consumed locally that should have been forwarded.
        for (int i = 1; i < argc; ++i)
            if (std::string(argv[i]) == "--connect")
                return clientMain(argc, argv);

        // Shared flags first (consumed from argv, TS_* fallbacks
        // applied); the remainder must all be grid options.
        driver::RunOptions opt =
            driver::parseCommandLine(argc, argv, /*strict=*/false);
        driver::GridSettings grid;
        std::string serveSock;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("option '", arg, "' requires a value");
                return argv[++i];
            };
            if (arg == "--configs") {
                grid.configs = value();
                (void)driver::sweepConfigsFromList(grid.configs);
            } else if (arg == "--seeds") {
                grid.seeds = driver::parseSeedList(value());
            } else if (arg == "--scales") {
                grid.scales = driver::parseScaleList(value());
            } else if (arg == "--lanes") {
                grid.lanes = driver::parseLanes(value());
            } else if (arg == "--baseline") {
                grid.baseline = value();
            } else if (arg == "--out") {
                grid.out = value();
            } else if (arg == "--grid") {
                driver::loadGridFile(value(), opt, grid);
            } else if (arg == "--set") {
                const auto [k, v] = splitSetting(value());
                driver::applyGridKey(k, v, opt, grid);
            } else if (arg == "--list-grid-keys") {
                driver::printGridKeys(std::cout);
                return 0;
            } else if (arg == "--cache") {
                grid.cacheDir = value();
            } else if (arg == "--cache-cap") {
                grid.cacheCapBytes = driver::parseCapBytes(value());
            } else if (arg == "--no-snapshot-fork") {
                grid.noSnapshotFork = true;
            } else if (arg == "--dry-run") {
                grid.dryRun = true;
            } else if (arg == "--serve") {
                serveSock = value();
            } else if (arg == "--quiet") {
                grid.quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else {
                std::cerr << "delta-sweep: unknown option '" << arg
                          << "'\n\n";
                usage(2);
            }
        }

        if (!serveSock.empty()) {
            std::fprintf(stderr, "delta-sweep: serving on %s\n",
                         serveSock.c_str());
            service::ServeConfig cfg;
            cfg.socketPath = serveSock;
            service::serve(cfg);
            return 0;
        }

        driver::SweepSpec spec = driver::buildSweepSpec(opt, grid);
        // Progress/ETA is interactive chrome: off for pipes by
        // default, but --progress=always forces it into CI logs and
        // --progress=never silences a TTY.
        spec.progress = !grid.quiet && opt.progressEnabled();

        if (grid.dryRun) {
            driver::Sweep sweep(spec);
            std::unique_ptr<cache::RunCache> cache;
            if (!spec.cacheDir.empty())
                cache = std::make_unique<cache::RunCache>(
                    cache::RunCacheConfig{spec.cacheDir,
                                          spec.cacheCapBytes});
            const std::string& fp = cache::RunCache::codeFingerprint();
            std::size_t hits = 0;
            for (const driver::RunPoint& p : sweep.points()) {
                const std::string key = cache::RunCache::keyFor(
                    fp, driver::canonicalCell(spec, p));
                const bool hit = cache && cache->contains(key);
                hits += hit ? 1 : 0;
                std::printf("%-40s %s %s\n", p.tag().c_str(),
                            key.c_str(), hit ? "hit" : "miss");
            }
            if (!grid.quiet)
                std::fprintf(stderr,
                             "delta-sweep: dry run: %zu points, "
                             "%zu predicted hits, %zu misses\n",
                             sweep.points().size(), hits,
                             sweep.points().size() - hits);
            return 0;
        }

        const std::size_t nw = spec.workloads.size();
        const std::size_t nc = spec.configs.size();
        const std::size_t ns = spec.seeds.size();
        const std::size_t nx = spec.scales.size();
        driver::Sweep sweep(std::move(spec));
        if (!grid.quiet) {
            if (opt.jobs > 0)
                std::fprintf(
                    stderr,
                    "delta-sweep: %zu runs (%zu workloads x %zu "
                    "configs x %zu seeds x %zu scales), -j %u\n",
                    sweep.points().size(), nw, nc, ns, nx, opt.jobs);
            else
                std::fprintf(
                    stderr,
                    "delta-sweep: %zu runs (%zu workloads x %zu "
                    "configs x %zu seeds x %zu scales), -j auto\n",
                    sweep.points().size(), nw, nc, ns, nx);
        }
        const driver::SweepReport report = sweep.run();

        if (!report.spec.cacheDir.empty())
            std::fprintf(stderr,
                         "delta-sweep: cache: %llu hits, %llu "
                         "misses\n",
                         static_cast<unsigned long long>(
                             report.cacheHits),
                         static_cast<unsigned long long>(
                             report.cacheMisses));

        if (!grid.out.empty()) {
            std::ofstream os(grid.out);
            if (!os)
                fatal("cannot write report '", grid.out, "'");
            report.writeJson(os);
            std::fprintf(stderr, "delta-sweep: report written to %s\n",
                         grid.out.c_str());
        } else {
            report.writeJson(std::cout);
        }

        const std::size_t bad = report.failures();
        if (bad > 0) {
            std::fprintf(stderr,
                         "delta-sweep: %zu of %zu runs failed:\n",
                         bad, report.runs.size());
            for (const driver::RunOutcome& r : report.runs) {
                if (!r.ok())
                    std::fprintf(
                        stderr, "  %-32s %s\n",
                        r.point.tag().c_str(),
                        r.failed ? r.error.c_str() : "check failed");
            }
            return 1;
        }
        return 0;
    } catch (const FatalError& e) {
        std::cerr << "delta-sweep: " << e.what() << "\n";
        return 2;
    }
}
