/**
 * @file
 * The fabric instruction set: opcodes, metadata, and elementwise
 * evaluation semantics.
 *
 * Three opcode classes exist:
 *  - elementwise: consume one token per operand, emit one token;
 *  - accumulators: consume a stream, emit one token per segment;
 *  - stream ops: data-dependent two-input ops (sorted merge, sorted
 *    intersection count) that give dataflow hardware its edge on
 *    irregular kernels.
 */

#ifndef TS_CGRA_OP_HH
#define TS_CGRA_OP_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace ts
{

/** Fabric opcodes. */
enum class Op : std::uint8_t
{
    // Structural
    Input,  ///< external input port
    Output, ///< external output port
    // Integer elementwise
    Add, Sub, Mul, Div, Min, Max,
    And, Or, Xor, Shl, Shr,
    CmpLt, CmpEq, Select, Abs,
    // Floating-point elementwise
    FAdd, FSub, FMul, FDiv, FMin, FMax, FCmpLt, FAbs,
    // Conversions
    IToF, FToI,
    // Accumulators (one output per segment)
    AccAdd, FAccAdd, AccMax, AccMin, AccCount,
    // Data-dependent stream ops
    Merge2,     ///< sorted 2-way merge of whole streams
    IsectCount, ///< per-segment count of common sorted elements
};

/** Classification helpers and metadata. */
struct OpInfo
{
    const char* name;
    std::uint8_t arity;   ///< operand count (0 for Input)
    std::uint8_t latency; ///< pipeline depth in cycles
};

/** Metadata lookup for an opcode. */
const OpInfo& opInfo(Op op);

/** Name string for diagnostics. */
inline std::string
opName(Op op)
{
    return opInfo(op).name;
}

/** True for ops evaluated one token in, one token out. */
bool isElementwise(Op op);

/** True for per-segment accumulator ops. */
bool isAccumulator(Op op);

/** True for data-dependent two-input stream ops. */
bool isStreamOp(Op op);

/**
 * Evaluate an elementwise opcode.
 * @param op the opcode (must satisfy isElementwise).
 * @param a,b,c operand words (unused slots ignored).
 */
Word evalElementwise(Op op, Word a, Word b, Word c);

/** Apply one accumulation step; returns the new accumulator. */
Word evalAccStep(Op op, Word acc, Word v);

/** Identity value for an accumulator opcode. */
Word accIdentity(Op op);

} // namespace ts

#endif // TS_CGRA_OP_HH
