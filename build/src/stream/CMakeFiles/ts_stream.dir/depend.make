# Empty dependencies file for ts_stream.
# This may be replaced when dependencies are built.
