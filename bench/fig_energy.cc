/**
 * @file
 * Fig-8 (extension): modeled energy, Delta vs static-parallel.
 *
 * The abstract's headline is performance, but structure recovery is
 * also an energy story: multicast removes DRAM fetches (the dominant
 * per-event cost) and pipelining removes memory round trips.  This
 * figure breaks modeled energy down by component for both designs.
 *
 * A thin wrapper over the sweep engine: the workloads x
 * {static, delta} grid runs on a host thread pool (-j N); the energy
 * model evaluates each run's aggregated StatSet.
 */

#include <cstdio>
#include <iostream>

#include "accel/energy_model.hh"
#include "bench_util.hh"
#include "driver/sweep.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

void
printTable(const driver::SweepReport& report)
{
    const driver::RunOptions& opt = options();
    std::puts("");
    std::puts("Fig-8  Modeled energy (uJ), static vs Delta, 8 lanes");
    rule(78);
    std::printf("%-10s %12s %12s %8s   %s\n", "workload", "static(uJ)",
                "delta(uJ)", "ratio", "largest static component");
    rule(78);
    std::vector<double> ratios;
    for (const Wk w : report.spec.workloads) {
        const driver::RunOutcome* st =
            report.find(w, "static", opt.seed, opt.scale);
        const driver::RunOutcome* dy =
            report.find(w, "delta", opt.seed, opt.scale);
        if (st == nullptr || dy == nullptr || !st->ok() || !dy->ok())
            continue;
        const EnergyReport se = computeEnergy(st->stats, 8);
        const EnergyReport de = computeEnergy(dy->stats, 8);
        const EnergyEntry* biggest = &se.entries.front();
        for (const auto& e : se.entries) {
            if (e.nanojoules > biggest->nanojoules)
                biggest = &e;
        }
        const double ratio =
            se.totalNanojoules() / de.totalNanojoules();
        ratios.push_back(ratio);
        std::printf("%-10s %12.1f %12.1f %7.2fx   %s\n", wkName(w),
                    se.totalNanojoules() / 1000.0,
                    de.totalNanojoules() / 1000.0, ratio,
                    biggest->name.c_str());
    }
    rule(78);
    std::printf("%-10s %12s %12s %7.2fx\n", "geomean", "", "",
                geomean(ratios));
    std::puts("expected shape: energy savings track the DRAM-traffic "
              "savings (Fig-5) plus shorter runtime (less static "
              "energy)");
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        const driver::RunOptions opt =
            driver::parseCommandLine(argc, argv, /*strict=*/true);
        bench::options() = opt;

        driver::SweepSpec spec;
        spec.workloads = opt.workloads;
        spec.configs = driver::sweepConfigsFromList("static,delta");
        spec.seeds = {opt.seed};
        spec.scales = {opt.scale};
        spec.baseline = "static";
        spec.jobs = opt.jobs;
        spec.benchJsonDir = opt.benchJsonDir;
        spec.tracePath = opt.tracePath;
        spec.noFastForward = opt.noFastForward;
        spec.progress = true;

        const driver::SweepReport report =
            driver::Sweep(std::move(spec)).run();
        printTable(report);
        return report.allOk() ? 0 : 1;
    } catch (const ts::FatalError& e) {
        std::cerr << "fig_energy: " << e.what() << "\n";
        return 2;
    }
}
